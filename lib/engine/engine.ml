module Icm = Iflow_core.Icm
module Rng = Iflow_stats.Rng
module Fingerprint = Iflow_stats.Fingerprint
module Estimator = Iflow_mcmc.Estimator
module Conditions = Iflow_mcmc.Conditions
module Cancel = Iflow_mcmc.Cancel
module Metrics = Iflow_obs.Metrics
module Trace = Iflow_obs.Trace
module Clock = Iflow_obs.Clock
module Fail = Iflow_fault.Fail
module Planner = Iflow_plan.Planner
module Obs_log = Iflow_obs.Log

let m_queries =
  Metrics.counter ~help:"Flow queries answered (cache hits included)"
    "iflow_engine_queries_total"

let m_rounds =
  Metrics.counter ~help:"Adaptive sampling rounds across all queries"
    "iflow_engine_query_rounds_total"

let m_samples =
  Metrics.counter ~help:"Indicator samples drawn across all queries"
    "iflow_engine_samples_total"

let m_query_seconds =
  Metrics.histogram ~scale:1e-9 ~help:"Wall time per sampled (uncached) query"
    "iflow_engine_query_seconds"

let m_last_rhat =
  Metrics.gauge ~help:"Split R-hat at stop of the most recent sampled query"
    "iflow_engine_last_rhat"

let m_last_mcse =
  Metrics.gauge ~help:"MCSE at stop of the most recent sampled query"
    "iflow_engine_last_mcse"

let m_cache_hits =
  Metrics.counter ~help:"Result cache hits" "iflow_engine_cache_hits_total"

let m_cache_misses =
  Metrics.counter ~help:"Result cache misses" "iflow_engine_cache_misses_total"

let m_cache_evictions =
  Metrics.counter ~help:"Result cache evictions (LRU pressure and hot-swap)"
    "iflow_engine_cache_evictions_total"

let m_cache_entries =
  Metrics.gauge ~help:"Result cache entries" "iflow_engine_cache_entries"

let m_failed_chains =
  Metrics.counter ~help:"MH chains lost to exceptions during queries"
    "iflow_engine_failed_chains_total"

let m_degraded_queries =
  Metrics.counter
    ~help:"Queries completed from surviving chains after chain failures"
    "iflow_engine_degraded_queries_total"

let m_cancelled_rounds =
  Metrics.counter
    ~help:"Sampling rounds abandoned mid-draw by a tripped cancel token"
    "iflow_engine_cancelled_rounds_total"

let m_deadline_queries =
  Metrics.counter
    ~help:"Queries stopped by a tripped cancel token (partial or failed)"
    "iflow_engine_deadline_queries_total"

type config = {
  chains : int;
  domains : int option;
  burn_in : int;
  thin : int;
  round_samples : int;
  max_samples : int;
  rhat_target : float;
  mcse_target : float;
  cache_capacity : int;
  planner : bool;
  plan_budget : int;
  plan_validate : bool;
}

let default_config =
  {
    chains = 4;
    domains = None;
    burn_in = 1000;
    thin = 20;
    round_samples = 250;
    max_samples = 20_000;
    rhat_target = 1.05;
    mcse_target = 0.01;
    cache_capacity = 256;
    planner = true;
    plan_budget = Planner.default_budget;
    plan_validate = false;
  }

let validate_config c =
  let bad fmt = Printf.ksprintf invalid_arg ("Engine: bad config: " ^^ fmt) in
  if c.chains < 1 then bad "chains must be >= 1 (got %d)" c.chains;
  if c.burn_in < 0 then bad "burn_in must be >= 0 (got %d)" c.burn_in;
  if c.thin < 1 then bad "thin must be >= 1 (got %d)" c.thin;
  if c.round_samples < 1 then
    bad "round_samples must be >= 1 (got %d)" c.round_samples;
  if c.max_samples < c.chains then
    bad "max_samples must be >= chains (got %d < %d)" c.max_samples c.chains;
  if c.rhat_target < 1.0 then
    bad "rhat_target must be >= 1 (got %g)" c.rhat_target;
  if not (c.mcse_target > 0.0) then
    bad "mcse_target must be > 0 (got %g)" c.mcse_target;
  if c.cache_capacity < 0 then
    bad "cache_capacity must be >= 0 (got %d)" c.cache_capacity;
  if c.plan_budget < 1 then
    bad "plan_budget must be >= 1 (got %d)" c.plan_budget;
  match c.domains with
  | Some d when d < 1 -> bad "domains must be >= 1 (got %d)" d
  | _ -> ()

type plan =
  | Plan_exact of { cone_nodes : int; validated : bool }
  | Plan_mh of { fallback : string option }

(* Phase timings live OUTSIDE [result] on purpose: results are cached
   in the LRU and must stay bit-identical whether or not anyone is
   measuring, so callers that want the decomposition pass a side
   channel the engine fills in place. *)
type phases = { mutable plan_ns : int; mutable sample_ns : int; mutable rounds : int }

let phases () = { plan_ns = 0; sample_ns = 0; rounds = 0 }

type result = {
  estimate : float;
  rhat : float;
  ess : float;
  mcse : float;
  total_samples : int;
  chains_used : int;
  cached : bool;
  partial : bool;
  model_digest : string;
  plan : plan;
}

exception
  Chains_failed of {
    query : string;
    failed : int;
    chains : int;
    reason : string;
  }

exception
  Deadline_exceeded of {
    query : string;
    reason : string; (* "deadline expired" or the explicit fire reason *)
    rounds : int; (* full rounds completed before the token tripped *)
  }

let () =
  Printexc.register_printer (function
    | Chains_failed { query; failed; chains; reason } ->
      Some
        (Printf.sprintf
           "Engine.Chains_failed: query %s lost %d of %d chains (first \
            failure: %s)"
           query failed chains reason)
    | Deadline_exceeded { query; reason; rounds } ->
      Some
        (Printf.sprintf
           "Engine.Deadline_exceeded: query %s cancelled (%s) after %d \
            complete rounds"
           query reason rounds)
    | _ -> None)

type t = {
  mutable icm : Icm.t;
  mutable digest : string;
  config : config;
  pool : Pool.t;
  cache : (string, result) Lru.t;
  seed : int;
  mutable lru_flushed : Lru.stats; (* already exported to the registry *)
  lock : Mutex.t;
      (* guards [icm]/[digest]/[cache]/[lru_flushed]; never held while
         sampling, so concurrent callers only serialise on the cache *)
}

(* [Lru] keeps its own lifetime counters; re-export their growth since
   the last sync so the registry's counters stay monotone per engine. *)
let sync_cache_metrics t =
  if Metrics.recording () then begin
    let s = Lru.stats t.cache in
    let fl = t.lru_flushed in
    Metrics.add m_cache_hits (s.Lru.hits - fl.Lru.hits);
    Metrics.add m_cache_misses (s.Lru.misses - fl.Lru.misses);
    Metrics.add m_cache_evictions (s.Lru.evictions - fl.Lru.evictions);
    Metrics.set m_cache_entries (float_of_int s.Lru.entries);
    t.lru_flushed <- s
  end

let icm_digest = Icm.digest

let config_key c =
  Printf.sprintf "k%d b%d t%d r%d n%d rh%h mc%h p%d g%d v%d" c.chains c.burn_in
    c.thin c.round_samples c.max_samples c.rhat_target c.mcse_target
    (if c.planner then 1 else 0)
    c.plan_budget
    (if c.plan_validate then 1 else 0)

let create ?(config = default_config) ~seed icm =
  validate_config config;
  {
    icm;
    digest = icm_digest icm;
    config;
    pool = Pool.create ?size:config.domains ();
    cache = Lru.create config.cache_capacity;
    seed;
    lru_flushed = { Lru.hits = 0; misses = 0; evictions = 0; entries = 0 };
    lock = Mutex.create ();
  }

let locked t f = Mutex.protect t.lock f

let icm t = locked t (fun () -> t.icm)
let digest t = locked t (fun () -> t.digest)
let config t = t.config
let pool_size t = Pool.size t.pool
let cache_stats t = locked t (fun () -> Lru.stats t.cache)

(* a query pins the (model, digest) pair it sees at entry: everything
   downstream — seed derivation, cache key, sampling — uses the
   captured pair, so a [swap] landing mid-query can never mix two model
   versions inside one answer *)
let capture t = locked t (fun () -> (t.icm, t.digest))

let cache_key t ~digest q =
  (* (model digest, query, conditions, config, seed): conditions are
     part of Query.key *)
  Printf.sprintf "%s/%s/%d/%s" digest (config_key t.config) t.seed (Query.key q)

(* Per-query seed derived from (engine seed, model, query), so results
   are independent of the order queries arrive in — a cached result and
   a recomputed one can never disagree. *)
let query_seed t ~digest q =
  let fp = Fingerprint.create () in
  Fingerprint.add_int fp t.seed;
  Fingerprint.add_string fp digest;
  Fingerprint.add_string fp (Query.key q);
  Fingerprint.to_seed fp

(* Growable per-chain sample buffer; samples are 0/1 indicator draws. *)
type buffer = { mutable data : float array; mutable len : int }

let buffer_create () = { data = Array.make 256 0.0; len = 0 }

let buffer_push b x =
  if b.len = Array.length b.data then begin
    let grown = Array.make (2 * b.len) 0.0 in
    Array.blit b.data 0 grown 0 b.len;
    b.data <- grown
  end;
  b.data.(b.len) <- x;
  b.len <- b.len + 1

let buffer_contents b = Array.sub b.data 0 b.len

let run_query ?rid ?phases ?(cancel = Cancel.none) ?(on_deadline = `Fail) t
    ~icm ~digest q =
  let span_args =
    ("key", Trace.Str (Query.key q))
    ::
    (match rid with Some r -> [ ("rid", Trace.Str r) ] | None -> [])
  in
  (* the numeric flow id ties this query's spans (conn thread, worker
     thread, pool domains) into one arrowed chain in the trace viewer *)
  let flow =
    match rid with
    | Some r when Trace.enabled () -> Some (Trace.flow_id r)
    | _ -> None
  in
  let flow_linked = Atomic.make false in
  Trace.with_span "engine.query" ~args:span_args
  @@ fun () ->
  let t0 = if Metrics.recording () then Clock.now_ns () else 0 in
  let ps0 = match phases with Some _ -> Clock.now_ns () | None -> 0 in
  if Query.max_node q >= Icm.n_nodes icm then
    invalid_arg
      (Printf.sprintf "Engine: query %s references node >= %d" (Query.key q)
         (Icm.n_nodes icm));
  let c = t.config in
  let conditions = Conditions.v (Query.conditions q) in
  let qrng = Rng.create (query_seed t ~digest q) in
  (* chain RNGs are fixed up front, so losing chain i to a fault never
     perturbs the draws of the survivors *)
  let chain_rngs = Array.init c.chains (fun _ -> Rng.split qrng) in
  let streams = Array.make c.chains None in
  let buffers = Array.init c.chains (fun _ -> buffer_create ()) in
  let failed = Array.make c.chains false in
  let first_failure = ref None in
  let survivors () =
    Array.fold_left (fun n f -> if f then n else n + 1) 0 failed
  in
  let fail_chain i e =
    failed.(i) <- true;
    if !first_failure = None then first_failure := Some e;
    Metrics.inc m_failed_chains;
    (* a majority of chains must survive for the estimate to stand on
       the cross-chain diagnostics; below that, fail the query loudly *)
    if 2 * survivors () < c.chains then
      raise
        (Chains_failed
           {
             query = Query.key q;
             failed = c.chains - survivors ();
             chains = c.chains;
             reason = Printexc.to_string (Option.get !first_failure);
           })
  in
  let live () =
    let out = ref [] in
    for i = c.chains - 1 downto 0 do
      if not failed.(i) then out := i :: !out
    done;
    Array.of_list !out
  in
  let total = ref 0 in
  let finished = ref false in
  let cancelled = ref false in
  let last_summary = ref None in
  let rounds = ref 0 in
  (* shed before burn-in: a token already tripped at entry costs zero
     sampler work *)
  if Cancel.cancelled cancel then cancelled := true;
  while not (!finished || !cancelled) do
    let live_chains = live () in
    let k = Array.length live_chains in
    let per_chain =
      min c.round_samples (max 1 ((c.max_samples - !total + k - 1) / k))
    in
    let draws =
      Pool.run_results t.pool
        (fun i ->
          Fail.point "engine.chain";
          (match flow with
          | Some id ->
            (* one step event per query, from whichever pool domain
               picks a chain up first — this is the cross-domain hop *)
            if not (Atomic.exchange flow_linked true) then
              Trace.flow_step "request" ~id
          | None -> ());
          let st =
            match streams.(i) with
            | Some st -> st
            | None ->
              let st =
                Estimator.stream ~cancel ~conditions chain_rngs.(i) icm
                  ~burn_in:c.burn_in ~thin:c.thin
              in
              streams.(i) <- Some st;
              st
          in
          (* each chain owns its workspace, so the K chains of a query
             run allocation-free on K domains without sharing scratch *)
          let ws = Estimator.stream_workspace st in
          Array.init per_chain (fun _ ->
              Estimator.stream_next st ~f:(fun state ->
                  if Query.indicator_ws ws icm q state then 1.0 else 0.0)))
        live_chains
    in
    (* a token tripping mid-round aborts the whole round: the draws of
       chains that did finish it are discarded, so any partial answer
       stands only on rounds every live chain completed — the same
       whole-round footing a converged answer has *)
    if
      Array.exists
        (function Error Estimator.Cancelled -> true | _ -> false)
        draws
    then begin
      cancelled := true;
      Metrics.inc m_cancelled_rounds
    end
    else begin
      Array.iteri
        (fun slot r ->
          let i = live_chains.(slot) in
          match r with
          | Ok xs ->
            Array.iter (buffer_push buffers.(i)) xs;
            total := !total + Array.length xs
          | Error e -> fail_chain i e)
        draws;
      incr rounds;
      let s =
        Diagnostics.summary
          (Array.map (fun i -> buffer_contents buffers.(i)) (live ()))
      in
      last_summary := Some s;
      if
        Diagnostics.converged ~rhat_target:c.rhat_target
          ~mcse_target:c.mcse_target s
        || !total >= c.max_samples
      then finished := true
      else if Cancel.cancelled cancel then
        (* the round-boundary check: stop between rounds, keeping the
           round that just completed *)
        cancelled := true
    end
  done;
  let finish ~partial =
    let s = Option.get !last_summary in
    let chains_used = survivors () in
    if chains_used < c.chains then Metrics.inc m_degraded_queries;
    if Metrics.recording () then begin
      Metrics.add m_rounds !rounds;
      Metrics.add m_samples s.Diagnostics.n_total;
      Metrics.set m_last_rhat s.Diagnostics.rhat;
      Metrics.set m_last_mcse s.Diagnostics.mcse;
      Metrics.observe m_query_seconds (Clock.now_ns () - t0)
    end;
    (match phases with
    | Some p ->
      p.sample_ns <- p.sample_ns + (Clock.now_ns () - ps0);
      p.rounds <- p.rounds + !rounds
    | None -> ());
    {
      estimate = s.Diagnostics.mean;
      rhat = s.Diagnostics.rhat;
      ess = s.Diagnostics.ess;
      mcse = s.Diagnostics.mcse;
      total_samples = s.Diagnostics.n_total;
      chains_used;
      cached = false;
      partial;
      model_digest = digest;
      plan = Plan_mh { fallback = None };
    }
  in
  if not !cancelled then finish ~partial:false
  else begin
    Metrics.inc m_deadline_queries;
    match on_deadline with
    | `Partial when !rounds >= 1 && !last_summary <> None ->
      (* anytime answer: the estimate over every complete round, with
         its real (possibly unconverged) diagnostics, flagged partial *)
      finish ~partial:true
    | _ ->
      if Metrics.recording () then Metrics.add m_rounds !rounds;
      (match phases with
      | Some p ->
        p.sample_ns <- p.sample_ns + (Clock.now_ns () - ps0);
        p.rounds <- p.rounds + !rounds
      | None -> ());
      raise
        (Deadline_exceeded
           {
             query = Query.key q;
             reason =
               Option.value (Cancel.reason cancel) ~default:"cancelled";
             rounds = !rounds;
           })
  end

let targets_of_query q =
  match Query.kind q with
  | Query.Flow { src; dst } -> [ (src, dst) ]
  | Query.Community { src; sinks } -> List.map (fun s -> (src, s)) sinks
  | Query.Joint { flows } -> flows

(* Degraded sampled answers reflect a transient fault, not the model,
   and must not outlive it in the cache; exact answers have no chains
   to lose and always cache. *)
(* ... and partial (deadline-cut) answers likewise reflect the
   deadline, not the model: never cached. *)
let cacheable t r =
  match r.plan with
  | Plan_exact _ -> true
  | Plan_mh _ -> (not r.partial) && r.chains_used = t.config.chains

(* Plan, then answer: closed form when the planner certifies the whole
   query, the MH sampler (tagged with the fallback reason) otherwise.
   Planning is RNG-free and run_query is untouched, so answers on the
   MH path stay bit-for-bit what they were without a planner. *)
let compute ?rid ?phases ?cancel ?on_deadline t ~icm ~digest q =
  if Query.max_node q >= Icm.n_nodes icm then
    invalid_arg
      (Printf.sprintf "Engine: query %s references node >= %d" (Query.key q)
         (Icm.n_nodes icm));
  if not t.config.planner then begin
    Planner.record_fallback Planner.Disabled;
    {
      (run_query ?rid ?phases ?cancel ?on_deadline t ~icm ~digest q) with
      plan = Plan_mh { fallback = Some (Planner.reason_label Planner.Disabled) };
    }
  end
  else begin
    let tp0 = match phases with Some _ -> Clock.now_ns () | None -> 0 in
    let planned =
      Planner.plan ~budget:t.config.plan_budget icm
        ~targets:(targets_of_query q) ~conditions:(Query.conditions q)
    in
    (match phases with
    | Some p -> p.plan_ns <- p.plan_ns + (Clock.now_ns () - tp0)
    | None -> ());
    match planned with
    | Error reason ->
      Planner.record_fallback reason;
      {
        (run_query ?rid ?phases ?cancel ?on_deadline t ~icm ~digest q) with
        plan = Plan_mh { fallback = Some (Planner.reason_label reason) };
      }
    | Ok e ->
      Planner.record_exact ();
      let r =
        {
          estimate = e.Planner.value;
          rhat = 1.0;
          ess = 0.0;
          mcse = 0.0;
          total_samples = 0;
          chains_used = 0;
          cached = false;
          partial = false;
          model_digest = digest;
          plan =
            Plan_exact
              {
                cone_nodes = e.Planner.cone_nodes;
                validated = t.config.plan_validate;
              };
        }
      in
      if t.config.plan_validate then begin
        (* Exact_then_validate: also run the full MH path and cross
           check within its own error bar; the answer stays exact *)
        match run_query ?rid ?phases ?cancel t ~icm ~digest q with
        | mh ->
          let tol = (5.0 *. mh.mcse) +. 1e-9 in
          let agreed = Float.abs (mh.estimate -. r.estimate) <= tol in
          Planner.record_validation ~agreed;
          if not agreed then
            Obs_log.warn ~component:"engine"
              "plan validation disagreement on %s: exact %.6f vs MH %.6f \
               (mcse %.6f)"
              (Query.key q) r.estimate mh.estimate mh.mcse
        | exception Deadline_exceeded _ ->
          (* the deadline tripped inside the optional cross-check; the
             exact answer stands unvalidated *)
          ()
      end;
      r
  end

let invalidate_locked t ~digest =
  let prefix = digest ^ "/" in
  let plen = String.length prefix in
  Lru.evict_where t.cache (fun key ->
      String.length key >= plen && String.sub key 0 plen = prefix)

let invalidate t ~digest = locked t (fun () -> invalidate_locked t ~digest)

let swap t icm =
  locked t (fun () ->
      let retired = t.digest in
      t.icm <- icm;
      t.digest <- icm_digest icm;
      let evicted =
        if t.digest = retired then 0 else invalidate_locked t ~digest:retired
      in
      sync_cache_metrics t;
      evicted)

let query ?rid ?phases ?cancel ?on_deadline t q =
  Metrics.inc m_queries;
  let icm, digest = capture t in
  let key = cache_key t ~digest q in
  let r =
    match locked t (fun () -> Lru.find t.cache key) with
    | Some r -> { r with cached = true }
    | None ->
      let r = compute ?rid ?phases ?cancel ?on_deadline t ~icm ~digest q in
      if cacheable t r then locked t (fun () -> Lru.add t.cache key r);
      r
  in
  locked t (fun () -> sync_cache_metrics t);
  r

let query_all ?rids t qs =
  let rid i =
    match rids with
    | Some a when i < Array.length a -> Some a.(i)
    | _ -> None
  in
  (* duplicate queries sample once; each unique query then fans its
     chains out across the pool *)
  if Lru.capacity t.cache > 0 then
    (* the cache already dedups (per-query seeds make this sound), and
       its hit counter then reflects the batch's duplicates *)
    List.mapi (fun i q -> query ?rid:(rid i) t q) qs
  else begin
    let results = Hashtbl.create 16 in
    List.mapi
      (fun i q ->
        Metrics.inc m_queries;
        let icm, digest = capture t in
        let key = cache_key t ~digest q in
        match Hashtbl.find_opt results key with
        | Some r -> { r with cached = true }
        | None ->
          let r = compute ?rid:(rid i) t ~icm ~digest q in
          if cacheable t r then Hashtbl.replace results key r;
          r)
      qs
  end

let pp_result ppf r =
  match r.plan with
  | Plan_exact { cone_nodes; validated } ->
    Format.fprintf ppf "%.5f (exact, cone %d nodes%s%s)" r.estimate cone_nodes
      (if validated then ", validated" else "")
      (if r.cached then ", cached" else "")
  | Plan_mh _ ->
    Format.fprintf ppf
      "%.5f (R-hat %.4f, ESS %.0f, MCSE %.5f, n %d, chains %d%s%s)" r.estimate
      r.rhat r.ess r.mcse r.total_samples r.chains_used
      (if r.partial then ", partial" else "")
      (if r.cached then ", cached" else "")
