(** Deterministic pseudo-random number generation.

    Thin wrapper around [Random.State] so every stochastic component in
    the library threads an explicit generator — experiments are
    reproducible from a seed and tests can pin randomness. *)

type t

val create : int -> t
(** [create seed] is a fresh generator deterministically derived from
    [seed]. *)

val split : t -> t
(** [split t] is a new generator whose stream is derived from (and
    independent of further draws from) [t]. Used to give parallel
    experiment repetitions distinct streams. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [[0, bound)]. *)

val uniform : t -> float
(** [uniform t] draws uniformly from [[0, 1)]. *)

val uniform_in : t -> float -> float -> float
(** [uniform_in t lo hi] draws uniformly from [[lo, hi)]. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [{0, ..., bound - 1}]. *)

val bool : t -> bool
(** [bool t] is a fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** [shuffle t a] permutes [a] in place, uniformly (Fisher-Yates). *)

val choose : t -> 'a array -> 'a
(** [choose t a] draws a uniform element of [a]. Raises
    [Invalid_argument] on an empty array. *)

val state : t -> Random.State.t
(** Escape hatch to the underlying state. *)
