test/test_core.ml: Alcotest Array Beta_icm Cascade Evidence Exact Float Generator Icm Iflow_core Iflow_graph Iflow_stats List Printf Pseudo_state QCheck QCheck_alcotest Random Summary
