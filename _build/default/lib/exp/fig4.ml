open Iflow_core
module Descriptive = Iflow_stats.Descriptive
module Estimator = Iflow_mcmc.Estimator

type result = {
  focus : int;
  predicted : int array;
  actual : int array;
}

let run scale rng lab =
  let config = Scale.mcmc scale in
  (* pick the most retweeted user that also has held-out cascades *)
  let focuses = Twitter_lab.interesting_users lab ~count:10 in
  let focus =
    List.find
      (fun f -> Twitter_lab.cascade_outcomes lab ~source:f <> [])
      focuses
  in
  let sub_model, _, sub_focus =
    Twitter_lab.subgraph_around lab ~centre:focus ~radius:2
  in
  let icm = Beta_icm.expected_icm sub_model in
  let predicted = Estimator.impact_samples rng icm config ~src:sub_focus in
  let actual =
    Twitter_lab.cascade_outcomes lab ~source:focus
    |> List.map (fun (_, active) ->
           Array.fold_left (fun c a -> if a then c + 1 else c) (-1) active)
    |> Array.of_list
  in
  { focus; predicted; actual }

let mean_of_ints xs =
  if Array.length xs = 0 then Float.nan
  else Descriptive.mean (Array.map float_of_int xs)

let report scale rng lab ppf =
  let r = run scale rng lab in
  let hi =
    float_of_int
      (max
         (Array.fold_left max 1 r.predicted)
         (Array.fold_left max 1 r.actual))
  in
  Format.fprintf ppf
    "@[<v>== Fig 4: impact of a tweet (retweeting users) for user %d ==@,"
    r.focus;
  Format.fprintf ppf "predicted: mean %.2f over %d samples@," (mean_of_ints r.predicted)
    (Array.length r.predicted);
  Format.fprintf ppf "%a"
    Descriptive.pp_histogram
    (Descriptive.histogram ~lo:0.0 ~hi ~bins:12
       (Array.map float_of_int r.predicted));
  Format.fprintf ppf "actual: mean %.2f over %d cascades@," (mean_of_ints r.actual)
    (Array.length r.actual);
  if Array.length r.actual > 0 then
    Format.fprintf ppf "%a"
      Descriptive.pp_histogram
      (Descriptive.histogram ~lo:0.0 ~hi ~bins:12
         (Array.map float_of_int r.actual));
  Format.fprintf ppf "@]";
  r
