(** Influence maximisation on a learned ICM — the application the paper
    motivates via Kempe, Kleinberg & Tardos: choose [k] seed nodes
    maximising the expected number of activated nodes.

    The spread function is estimated by cascade simulation and is
    monotone submodular, so lazy greedy (CELF) carries the classical
    (1 - 1/e) approximation guarantee up to sampling noise. *)

val expected_spread :
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> seeds:int list -> runs:int -> float
(** Monte-Carlo estimate of the expected number of active nodes
    (including the seeds) when the cascade starts at [seeds]. *)

val greedy_seeds :
  ?runs:int ->
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> k:int -> int list * float
(** [greedy_seeds rng icm ~k] is (seed set, estimated spread): lazy
    greedy over all nodes with [runs] (default 300) simulations per
    evaluation. Raises [Invalid_argument] when [k] exceeds the node
    count or is negative. *)
