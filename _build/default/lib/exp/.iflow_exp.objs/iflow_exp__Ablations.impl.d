lib/exp/ablations.ml: Array Beta_icm Cascade Evidence Exact Float Format Generator Icm Iflow_bucket Iflow_core Iflow_graph Iflow_mcmc Iflow_stats List Pseudo_state Scale Summary Sys
