examples/twitter_pipeline.ml: Array Corpus Format Hashtbl Iflow_bucket Iflow_core Iflow_graph Iflow_mcmc Iflow_stats Iflow_twitter List Preprocess Printf Tweet
