(** Certified closed-form flow evaluation on an extracted {!Cone}.

    Generalises {!Iflow_core.Exact.flow_probability} (the paper's Eq. 2
    exclusion-set recursion) past its 62-node bitmask limit: exclusion
    sets are hash-consed sorted node lists pruned to the target's
    ancestor set, so certified DAG cones evaluate in linear time and
    certified cycles keep small sets. Before evaluating, the soundness
    certificate is checked — at every join, the parents' cone ancestor
    sets must be pairwise disjoint apart from [src], which forces the
    parent flows onto disjoint (hence independent) edge sets and makes
    the Eq. 2 product form exact (DESIGN.md §2h). Unsound cones are
    refused, never approximated. *)

type outcome =
  | Value of { p : float; work : int; path : int list option }
      (** The exact probability; [path] holds the cone-local node ids
          of the unique [src -> dst] path when the cone is a tree (one
          live in-edge per non-source node). *)
  | Unsound of { join : int }
      (** Parent flows share ancestry at this cone-local node: Eq. 2
          would overestimate — fall back to MH. *)
  | Budget of { work : int }
      (** The work budget ran out mid-certification or mid-recursion. *)

val eval : ?budget:int -> Cone.t -> outcome
(** [budget] bounds total work (edge visits, bitset words, exclusion
    filtering); default unlimited. Deterministic: equal cones give
    bit-equal probabilities. *)
