(* Cli_config — the reusable flag-spec layer of the infoflow CLI.

   Every subcommand used to carry its own copy of the seed /
   observability / MCMC / engine / checkpoint / on-error option
   parsing; the copies drifted (the CLI once shipped MCMC defaults that
   silently disagreed with the library). This module is the single
   source of truth: subcommands compose the terms below and call the
   matching setup/loader helpers, so a knob means the same thing in
   `estimate`, `batch`, `stream`, and `serve`. *)
open Cmdliner
module Estimator = Iflow_mcmc.Estimator
module Engine = Iflow_engine.Engine
module Beta_icm = Iflow_core.Beta_icm
module Model_io = Iflow_io.Model_io
module Obs_log = Iflow_obs.Log
module Obs_metrics = Iflow_obs.Metrics
module Obs_prometheus = Iflow_obs.Prometheus
module Obs_trace = Iflow_obs.Trace

(* engine/config/file errors are user errors, not crashes *)
let or_die f =
  match f () with
  | v -> v
  | exception (Failure msg | Invalid_argument msg | Sys_error msg) ->
    Obs_log.err "%s" msg;
    exit 1
  | exception (Engine.Chains_failed _ as e) ->
    Obs_log.err "%s" (Printexc.to_string e);
    exit 1
  | exception Iflow_stream.Binlog.Corrupt msg ->
    Obs_log.err "corrupt binary log: %s" msg;
    exit 1

(* exit 3 is reserved for --max-quarantine-rate violations, so scripts
   can tell "stream is garbage" from ordinary failures (exit 1) *)
let exit_quarantine = 3

let seed_term =
  let doc = "Random seed (experiments are reproducible per seed)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

(* ----- observability ----- *)

type obs = {
  log_level : string;
  metrics_out : string option;
  trace_out : string option;
}

let obs_term =
  let log_level =
    Arg.(
      value & opt string "warn"
      & info [ "log-level" ]
          ~doc:"Diagnostic verbosity on stderr: error, warn, info, or debug.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ]
          ~doc:
            "Switch metrics recording on and write a Prometheus text \
             exposition of everything recorded here on exit.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ]
          ~doc:
            "Write Chrome trace_event JSON here (open in chrome://tracing \
             or Perfetto).")
  in
  let make log_level metrics_out trace_out =
    { log_level; metrics_out; trace_out }
  in
  Term.(const make $ log_level $ metrics_out $ trace_out)

(* Recording never perturbs estimates (no RNG involvement; pinned by a
   regression test), so switching it on costs only the export on exit.
   Teardown goes through [at_exit] so error paths still flush. *)
let obs_setup obs =
  (match Obs_log.level_of_string obs.log_level with
  | Ok l -> Obs_log.set_level l
  | Error msg ->
    Obs_log.err "%s" msg;
    exit 1);
  (match obs.trace_out with Some path -> Obs_trace.to_file path | None -> ());
  if obs.metrics_out <> None then Obs_metrics.set_recording true;
  at_exit (fun () ->
      (match obs.metrics_out with
      | Some path -> (
        try Obs_prometheus.write_file Obs_metrics.default path
        with Sys_error msg -> Obs_log.err ~component:"obs" "%s" msg)
      | None -> ());
      Obs_trace.close ())

(* ----- sampling ----- *)

(* Defaults mirror Estimator.default_config exactly — the CLI used to
   ship its own (burn 1000, thin 10, samples 2000) and silently disagree
   with the library. One source of truth now. *)
let mcmc_term =
  let d = Estimator.default_config in
  let burn =
    Arg.(
      value & opt int d.Estimator.burn_in
      & info [ "burn-in" ] ~doc:"Burn-in steps (library default).")
  in
  let thin =
    Arg.(
      value & opt int d.Estimator.thin
      & info [ "thin" ] ~doc:"Steps between samples (library default).")
  in
  let samples =
    Arg.(
      value & opt int d.Estimator.samples
      & info [ "samples" ] ~doc:"Retained samples per chain (library default).")
  in
  let make burn_in thin samples = { Estimator.burn_in; thin; samples } in
  Term.(const make $ burn $ thin $ samples)

(* engine knobs shared by `estimate`, `batch`, and `serve` *)
let engine_term =
  let chains =
    Arg.(
      value & opt int Engine.default_config.Engine.chains
      & info [ "chains" ] ~doc:"Independent MH chains per query.")
  in
  let domains =
    Arg.(
      value & opt (some int) None
      & info [ "domains" ]
          ~doc:"Domain-pool size (default: recommended for this machine).")
  in
  let rhat =
    Arg.(
      value & opt float Engine.default_config.Engine.rhat_target
      & info [ "rhat-target" ] ~doc:"Stop when split-R-hat falls below this.")
  in
  let mcse =
    Arg.(
      value & opt float Engine.default_config.Engine.mcse_target
      & info [ "mcse-target" ]
          ~doc:"... and the Monte-Carlo standard error below this.")
  in
  let no_planner =
    Arg.(
      value & flag
      & info [ "no-planner" ]
          ~doc:
            "Disable the exact-oracle query planner: every query takes the \
             Metropolis-Hastings path, even when a closed-form answer is \
             available.")
  in
  let plan_budget =
    Arg.(
      value & opt int Engine.default_config.Engine.plan_budget
      & info [ "plan-budget" ]
          ~doc:
            "Planner work budget per query (certification + evaluation \
             units); queries that exceed it fall back to sampling.")
  in
  let plan_validate =
    Arg.(
      value & flag
      & info [ "plan-validate" ]
          ~doc:
            "Cross-check every exact-planned answer against a full MH run \
             (within 5 MCSE); disagreements are logged and counted. The \
             exact answer is still returned.")
  in
  let make chains domains rhat_target mcse_target no_planner plan_budget
      plan_validate (config : Estimator.config) =
    {
      Engine.default_config with
      Engine.chains;
      domains;
      rhat_target;
      mcse_target;
      burn_in = config.Estimator.burn_in;
      thin = config.Estimator.thin;
      round_samples = min 250 config.Estimator.samples;
      max_samples = config.Estimator.samples * chains;
      planner = not no_planner;
      plan_budget;
      plan_validate;
    }
  in
  Term.(
    const make $ chains $ domains $ rhat $ mcse $ no_planner $ plan_budget
    $ plan_validate $ mcmc_term)

(* ----- argument converters ----- *)

let condition_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ u; v; a ] -> (
      match (int_of_string_opt u, int_of_string_opt v, a) with
      | Some u, Some v, "+" -> Ok (u, v, true)
      | Some u, Some v, "-" -> Ok (u, v, false)
      | _ -> Error (`Msg "expected SRC:DST:+ or SRC:DST:-"))
    | _ -> Error (`Msg "expected SRC:DST:+ or SRC:DST:-")
  in
  let print ppf (u, v, a) =
    Format.fprintf ppf "%d:%d:%s" u v (if a then "+" else "-")
  in
  Arg.conv (parse, print)

let probe_conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ u; v ] -> (
      match (int_of_string_opt u, int_of_string_opt v) with
      | Some u, Some v -> Ok (u, v)
      | _ -> Error (`Msg "expected SRC:DST"))
    | _ -> Error (`Msg "expected SRC:DST")
  in
  Arg.conv (parse, fun ppf (u, v) -> Format.fprintf ppf "%d:%d" u v)

let model_required =
  Arg.(
    required
    & opt (some string) None
    & info [ "model" ] ~doc:"betaICM file.")

(* ----- the streaming learner's knobs, shared by `stream` and `serve` ----- *)

type learner = {
  model : string option;
  resume : string option;
  batch : int;
  checkpoint : string option;
  checkpoint_every : int option;
  keep_checkpoints : int;
  on_error : Iflow_stream.Runner.error_policy;
  max_quarantine_rate : float option;
  forget : float;
  drift_window : int;
  drift_delta : float;
}

let learner_term =
  let model =
    Arg.(
      value
      & opt (some string) None
      & info [ "model" ] ~doc:"Initial betaICM (e.g. the untrained prior).")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ]
          ~doc:
            "Resume from a streaming checkpoint: load the model and skip \
             the event-log lines it already absorbed. Digest mismatches \
             fail loudly.")
  in
  let batch =
    Arg.(
      value & opt int Iflow_stream.Runner.default_config.Iflow_stream.Runner.batch
      & info [ "batch" ]
          ~doc:"Applied events per published model version (and swap).")
  in
  let checkpoint =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~doc:"Checkpoint file to write periodically.")
  in
  let checkpoint_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "checkpoint-every" ]
          ~doc:"Event-log lines between checkpoints (requires --checkpoint).")
  in
  let keep_checkpoints =
    Arg.(
      value & opt int 1
      & info [ "keep-checkpoints" ]
          ~doc:
            "Rotated checkpoint generations to retain (FILE, FILE.1, ...). \
             --resume falls back to the newest generation that still loads \
             and verifies, so a crash mid-write costs one interval of \
             replay, not the run.")
  in
  let on_error =
    let policy_conv =
      Arg.enum
        [
          ("fail", Iflow_stream.Runner.Fail_fast);
          ("skip", Iflow_stream.Runner.Skip_line);
          ("retry", Iflow_stream.Runner.Retry_reads Iflow_fault.Retry.default);
        ]
    in
    Arg.(
      value & opt policy_conv Iflow_stream.Runner.Fail_fast
      & info [ "on-error" ]
          ~doc:
            "What to do when reading the event source fails: 'fail' stops \
             the run, 'skip' drops the read and continues (up to 100 \
             consecutive failures), 'retry' retries the read with \
             exponential backoff before failing.")
  in
  let max_quarantine_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-quarantine-rate" ]
          ~doc:
            "Exit with status 3 when quarantined/applied exceeds this rate \
             at end of stream — the ingest ran, but the evidence looks \
             wrong.")
  in
  let forget =
    Arg.(
      value & opt float 0.0
      & info [ "forget" ]
          ~doc:
            "Exponential forgetting factor per published batch, in [0, 1): \
             pseudo-counts are scaled by (1 - lambda) so old evidence fades \
             on non-stationary streams. 0 disables.")
  in
  let drift_window =
    Arg.(
      value
      & opt int Iflow_stream.Drift.default_config.Iflow_stream.Drift.window
      & info [ "drift-window" ] ~doc:"Per-edge trials per drift-test window.")
  in
  let drift_delta =
    Arg.(
      value
      & opt float Iflow_stream.Drift.default_config.Iflow_stream.Drift.delta
      & info [ "drift-delta" ]
          ~doc:"Significance of the Hoeffding drift test (smaller = stricter).")
  in
  let make model resume batch checkpoint checkpoint_every keep_checkpoints
      on_error max_quarantine_rate forget drift_window drift_delta =
    {
      model;
      resume;
      batch;
      checkpoint;
      checkpoint_every;
      keep_checkpoints;
      on_error;
      max_quarantine_rate;
      forget;
      drift_window;
      drift_delta;
    }
  in
  Term.(
    const make $ model $ resume $ batch $ checkpoint $ checkpoint_every
    $ keep_checkpoints $ on_error $ max_quarantine_rate $ forget
    $ drift_window $ drift_delta)

(* ----- event-log encoding ----- *)

type format = Format_jsonl | Format_bin | Format_auto

let format_term =
  let fmt_conv =
    Arg.enum
      [
        ("jsonl", Format_jsonl); ("bin", Format_bin); ("auto", Format_auto);
      ]
  in
  Arg.(
    value & opt fmt_conv Format_auto
    & info [ "format" ]
        ~doc:
          "Event-log encoding: 'jsonl' (one JSON object per line), 'bin' \
           (binary segments, see `infoflow convert`), or 'auto' (sniff the \
           magic bytes; stdin is always jsonl).")

let shards_term =
  Arg.(
    value & opt int 1
    & info [ "shards" ]
        ~doc:
          "Worker domains for binary ingest — decode and accumulate both \
           parallelize, and posteriors are bit-identical at any shard \
           count. Ignored on the JSONL path.")

(* the sniff: stdin can't be seeked, so it is always jsonl *)
let resolve_format fmt path =
  match fmt with
  | Format_jsonl -> `Jsonl
  | Format_bin -> `Bin
  | Format_auto ->
    if path <> "-" && Iflow_stream.Binlog.is_binlog path then `Bin else `Jsonl

(* Model/--resume resolution shared by `stream` and `serve`: returns the
   initial model plus the event-log offset and version id it was
   checkpointed at (0, 0 for a fresh --model). *)
let load_initial ~component (l : learner) =
  match (l.resume, l.model) with
  | Some ckpt, _ ->
    let model, offset, version =
      or_die (fun () ->
          Iflow_stream.Snapshot.recover
            ~on_skip:(fun ~path ~reason ->
              Obs_log.warn ~component "skipping damaged checkpoint %s: %s"
                path reason)
            ckpt)
    in
    Obs_log.info ~component "resuming from %s: version %d at offset %d" ckpt
      version offset;
    (model, offset, version)
  | None, Some path -> (or_die (fun () -> Model_io.load_beta_icm path), 0, 0)
  | None, None ->
    Obs_log.err ~component "provide --model or --resume";
    exit 1

let drift_config (l : learner) =
  {
    Iflow_stream.Drift.default_config with
    window = l.drift_window;
    delta = l.drift_delta;
  }

(* end-of-run quarantine-rate gate shared by `stream` and `serve` *)
let check_quarantine_rate ~component (l : learner)
    (s : Iflow_stream.Online.stats) =
  match l.max_quarantine_rate with
  | None -> ()
  | Some limit ->
    let quarantined = Iflow_stream.Online.quarantined s in
    let rate =
      if s.Iflow_stream.Online.applied = 0 then
        if quarantined = 0 then 0.0 else Float.infinity
      else
        float_of_int quarantined /. float_of_int s.Iflow_stream.Online.applied
    in
    if rate > limit then begin
      Obs_log.err ~component
        "quarantine rate %.4f (%d quarantined / %d applied) exceeds limit %.4f"
        rate quarantined s.Iflow_stream.Online.applied limit;
      exit exit_quarantine
    end
