lib/core/exact.mli: Icm
