lib/gtm/sgtm.mli: Iflow_core Iflow_stats
