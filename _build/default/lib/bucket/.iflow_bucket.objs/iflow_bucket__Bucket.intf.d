lib/bucket/bucket.mli: Format Iflow_stats
