(** The metrics registry: counters, gauges and log-scaled histograms,
    recorded from any number of OCaml 5 domains and merged on scrape.

    {b Sharding.} Counter and histogram cells are split across a small
    fixed array of shards indexed by [Domain.self () land mask], so the
    engine's pool domains record without cache-line ping-pong on a
    single cell; each shard is an [Atomic.t], so a scrape (or a merge
    after [Domain.join]) reads exact totals. Gauges are last-writer-
    wins single cells — they carry instantaneous readings (R-hat at
    stop, flagged-edge count), not accumulations.

    {b Recording switch.} The registry is a no-op until
    {!set_recording}[ true]: every record operation first reads one
    atomic flag and returns. Metric handles can therefore be created
    unconditionally at module-initialisation time and sprinkled through
    hot paths; the disabled cost is a load and a branch. Instrumented
    code must never branch on the flag to change {e what} it computes —
    estimates stay bit-for-bit identical with recording on or off
    (regression-tested in [test_obs]).

    {b Histograms} take non-negative integer observations (by
    convention nanoseconds for timings) into fixed power-of-two buckets
    — bucket [i] holds values in [[2^i, 2^(i+1))] — so histograms from
    different shards, runs or processes merge by bucket-wise addition.
    [scale] (e.g. 1e-9 for ns → s) is applied by exporters only; the
    stored values stay integral. *)

type registry

val default : registry
(** The process-wide registry every built-in instrumentation point
    records into. *)

val create_registry : unit -> registry
(** A private registry (tests, embedding). *)

val set_recording : bool -> unit
(** Globally enable or disable recording (default: disabled). *)

val recording : unit -> bool

(** {1 Counters} — monotonically increasing integers. *)

type counter

val counter :
  ?registry:registry -> ?labels:(string * string) list -> ?help:string ->
  string -> counter
(** [counter name] registers (or returns the already-registered)
    counter under [name] + [labels]. Raises [Invalid_argument] on a
    malformed name or label, or when [name]+[labels] is already
    registered as a different metric kind. *)

val inc : counter -> unit
val add : counter -> int -> unit
(** No-ops while recording is off; [add] ignores negative amounts. *)

val counter_value : counter -> int
(** Sum over shards. *)

(** {1 Gauges} — instantaneous float readings. *)

type gauge

val gauge :
  ?registry:registry -> ?labels:(string * string) list -> ?help:string ->
  string -> gauge

val set : gauge -> float -> unit
(** No-op while recording is off. *)

val gauge_value : gauge -> float

(** {1 Histograms} *)

type histogram

val histogram :
  ?registry:registry -> ?labels:(string * string) list -> ?help:string ->
  ?scale:float -> string -> histogram
(** [scale] (default 1.0) multiplies bucket edges and sums at export
    time — use 1e-9 for histograms observed in nanoseconds so the
    Prometheus exposition speaks seconds. *)

val observe : histogram -> int -> unit
(** Record one observation (clamped to 0 from below). No-op while
    recording is off. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> int
(** Raw (unscaled) observation count and sum, merged over shards. *)

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [(0, 1]]: the upper edge (raw units) of
    the bucket containing the [ceil (q * count)]-th smallest
    observation — an upper bound on the true quantile that is tight to
    within the bucket's factor-of-two resolution. [nan] when empty. *)

(** {1 Scrape} *)

type snapshot_value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      scale : float;
      sum : int;
      buckets : (float * int) array;
          (** (raw upper edge, {e cumulative} count), ending with
              [(infinity, total)]; empty-tail buckets trimmed. *)
    }

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;
  sample_help : string;
  sample_value : snapshot_value;
}

val snapshot : registry -> sample list
(** All registered metrics in registration order, with shard-merged
    values. *)

val to_json_string : registry -> string
(** The snapshot as a JSON document:
    [{"recording": bool, "metrics": [{name, labels, type, ...}]}], with
    histogram buckets as per-bucket (non-cumulative) counts over raw
    upper edges. *)
