(** Fig 10: the Fig 8 URL experiment repeated with edge probabilities
    drawn from a per-edge Gaussian approximation of the joint Bayes
    posterior (mean, std), instead of the posterior-mean point estimate.
    The paper observes a smoothing effect on flow probabilities, at the
    cost of fewer points per bucket. Thin wrapper over {!Fig8_9} with
    the [Ours_gaussian] method at radius 4. *)

val run : Scale.t -> Iflow_stats.Rng.t -> Twitter_lab.t -> Iflow_bucket.Bucket.t

val report :
  Scale.t -> Iflow_stats.Rng.t -> Twitter_lab.t -> Format.formatter ->
  Iflow_bucket.Bucket.t
