(* Shard count: enough to keep a machine's worth of pool domains off
   each other's cache lines, small enough that merges stay trivial.
   Power of two so the shard pick is a mask, not a mod. *)
let n_shards = 16
let shard_mask = n_shards - 1

(* Power-of-two histogram buckets: bucket i holds [2^i, 2^(i+1)), the
   last bucket is open-ended. 48 buckets cover 1 ns .. ~3.2 days. *)
let n_buckets = 48

let recording_flag = Atomic.make false
let set_recording b = Atomic.set recording_flag b
let recording () = Atomic.get recording_flag

let shard () = (Domain.self () :> int) land shard_mask

type counter = int Atomic.t array

type gauge = float Atomic.t

type histogram = {
  h_buckets : int Atomic.t array array; (* shard -> per-bucket counts *)
  h_sums : int Atomic.t array; (* shard -> sum of raw values *)
  h_scale : float;
}

type data =
  | Counter_data of counter
  | Gauge_data of gauge
  | Histogram_data of histogram

type spec = {
  name : string;
  labels : (string * string) list;
  help : string;
  data : data;
}

type registry = { lock : Mutex.t; mutable specs : spec list (* newest first *) }

let create_registry () = { lock = Mutex.create (); specs = [] }
let default = create_registry ()

(* ----- name and label hygiene (Prometheus data model) ----- *)

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let valid_label_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let kind_of_data = function
  | Counter_data _ -> "counter"
  | Gauge_data _ -> "gauge"
  | Histogram_data _ -> "histogram"

(* Register under (name, labels), idempotently: re-registering the same
   metric returns the existing cells, so module-initialisation-time
   handles in different libraries can share a metric. *)
let register registry ~name ~labels ~help make kind =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Obs.Metrics: bad metric name %S" name);
  List.iter
    (fun (k, _) ->
      if not (valid_label_name k) then
        invalid_arg (Printf.sprintf "Obs.Metrics: bad label name %S" k))
    labels;
  let labels = List.sort compare labels in
  Mutex.lock registry.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry.lock)
    (fun () ->
      match
        List.find_opt
          (fun s -> s.name = name && s.labels = labels)
          registry.specs
      with
      | Some s ->
        if kind_of_data s.data <> kind then
          invalid_arg
            (Printf.sprintf "Obs.Metrics: %s already registered as a %s" name
               (kind_of_data s.data));
        s.data
      | None ->
        (match
           List.find_opt
             (fun s -> s.name = name && kind_of_data s.data <> kind)
             registry.specs
         with
        | Some clash ->
          invalid_arg
            (Printf.sprintf
               "Obs.Metrics: %s already registered as a %s (cannot mix kinds \
                across label sets)"
               name
               (kind_of_data clash.data))
        | None -> ());
        let data = make () in
        registry.specs <- { name; labels; help; data } :: registry.specs;
        data)

(* ----- counters ----- *)

let counter ?(registry = default) ?(labels = []) ?(help = "") name =
  match
    register registry ~name ~labels ~help
      (fun () -> Counter_data (Array.init n_shards (fun _ -> Atomic.make 0)))
      "counter"
  with
  | Counter_data c -> c
  | _ -> assert false

let add c n =
  if n > 0 && Atomic.get recording_flag then
    ignore (Atomic.fetch_and_add c.(shard ()) n)

let inc c = add c 1

let counter_value c = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

(* ----- gauges ----- *)

let gauge ?(registry = default) ?(labels = []) ?(help = "") name =
  match
    register registry ~name ~labels ~help
      (fun () -> Gauge_data (Atomic.make 0.0))
      "gauge"
  with
  | Gauge_data g -> g
  | _ -> assert false

let set g v = if Atomic.get recording_flag then Atomic.set g v
let gauge_value g = Atomic.get g

(* ----- histograms ----- *)

let histogram ?(registry = default) ?(labels = []) ?(help = "") ?(scale = 1.0)
    name =
  match
    register registry ~name ~labels ~help
      (fun () ->
        Histogram_data
          {
            h_buckets =
              Array.init n_shards (fun _ ->
                  Array.init n_buckets (fun _ -> Atomic.make 0));
            h_sums = Array.init n_shards (fun _ -> Atomic.make 0);
            h_scale = scale;
          })
      "histogram"
  with
  | Histogram_data h -> h
  | _ -> assert false

let bucket_index v =
  if v <= 1 then 0
  else begin
    (* highest set bit of v, capped at the open-ended last bucket *)
    let v = ref v and i = ref 0 in
    while !v > 1 do
      v := !v lsr 1;
      incr i
    done;
    min !i (n_buckets - 1)
  end

(* raw upper edge of bucket i; the last bucket is open-ended *)
let bucket_upper i =
  if i >= n_buckets - 1 then infinity else Float.of_int (1 lsl (i + 1))

let observe h v =
  if Atomic.get recording_flag then begin
    let v = max 0 v in
    let s = shard () in
    ignore (Atomic.fetch_and_add h.h_buckets.(s).(bucket_index v) 1);
    ignore (Atomic.fetch_and_add h.h_sums.(s) v)
  end

let merged_buckets h =
  let out = Array.make n_buckets 0 in
  Array.iter
    (fun shard ->
      Array.iteri (fun i a -> out.(i) <- out.(i) + Atomic.get a) shard)
    h.h_buckets;
  out

let histogram_count h = Array.fold_left ( + ) 0 (merged_buckets h)

let histogram_sum h =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 h.h_sums

let quantile h q =
  if not (q > 0.0 && q <= 1.0) then
    invalid_arg "Obs.Metrics.quantile: q outside (0, 1]";
  let buckets = merged_buckets h in
  let total = Array.fold_left ( + ) 0 buckets in
  if total = 0 then nan
  else begin
    let target = max 1 (int_of_float (ceil (q *. float_of_int total))) in
    let rec go i cum =
      let cum = cum + buckets.(i) in
      if cum >= target then bucket_upper i else go (i + 1) cum
    in
    go 0 0
  end

(* ----- scrape ----- *)

type snapshot_value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      scale : float;
      sum : int;
      buckets : (float * int) array;
    }

type sample = {
  sample_name : string;
  sample_labels : (string * string) list;
  sample_help : string;
  sample_value : snapshot_value;
}

let histogram_snapshot h =
  let buckets = merged_buckets h in
  let last_nonempty = ref 0 in
  Array.iteri (fun i c -> if c > 0 then last_nonempty := i) buckets;
  (* keep the populated prefix plus the open-ended +Inf bucket *)
  let upto = min (!last_nonempty + 1) (n_buckets - 1) in
  let cum = ref 0 in
  let entries =
    Array.init (upto + 1) (fun i ->
        cum := !cum + buckets.(i);
        (bucket_upper i, !cum))
  in
  let total = Array.fold_left ( + ) 0 buckets in
  let entries =
    if fst entries.(upto) = infinity then (
      entries.(upto) <- (infinity, total);
      entries)
    else Array.append entries [| (infinity, total) |]
  in
  Histogram_v { scale = h.h_scale; sum = histogram_sum h; buckets = entries }

let snapshot registry =
  let specs =
    Mutex.lock registry.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry.lock)
      (fun () -> List.rev registry.specs)
  in
  List.map
    (fun s ->
      let value =
        match s.data with
        | Counter_data c -> Counter_v (counter_value c)
        | Gauge_data g -> Gauge_v (gauge_value g)
        | Histogram_data h -> histogram_snapshot h
      in
      {
        sample_name = s.name;
        sample_labels = s.labels;
        sample_help = s.help;
        sample_value = value;
      })
    specs

(* ----- JSON snapshot ----- *)

let json_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let json_float f =
  if Float.is_nan f then "null"
  else if f = infinity then "1e999"
  else if f = neg_infinity then "-1e999"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_json_string registry =
  let buf = Buffer.create 4096 in
  let str s =
    Buffer.add_char buf '"';
    json_escape buf s;
    Buffer.add_char buf '"'
  in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"recording\": %b,\n  \"metrics\": [" (recording ()));
  List.iteri
    (fun i s ->
      Buffer.add_string buf (if i = 0 then "\n    {" else ",\n    {");
      Buffer.add_string buf "\"name\": ";
      str s.sample_name;
      if s.sample_labels <> [] then begin
        Buffer.add_string buf ", \"labels\": {";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_string buf ", ";
            str k;
            Buffer.add_string buf ": ";
            str v)
          s.sample_labels;
        Buffer.add_string buf "}"
      end;
      (match s.sample_value with
      | Counter_v v ->
        Buffer.add_string buf
          (Printf.sprintf ", \"type\": \"counter\", \"value\": %d" v)
      | Gauge_v v ->
        Buffer.add_string buf
          (Printf.sprintf ", \"type\": \"gauge\", \"value\": %s" (json_float v))
      | Histogram_v { scale; sum; buckets } ->
        let count =
          if Array.length buckets = 0 then 0
          else snd buckets.(Array.length buckets - 1)
        in
        Buffer.add_string buf
          (Printf.sprintf
             ", \"type\": \"histogram\", \"scale\": %s, \"count\": %d, \
              \"sum\": %d, \"buckets\": ["
             (json_float scale) count sum);
        let prev = ref 0 and first = ref true in
        Array.iter
          (fun (le, cum) ->
            let c = cum - !prev in
            prev := cum;
            if c > 0 then begin
              if not !first then Buffer.add_string buf ", ";
              first := false;
              Buffer.add_string buf
                (Printf.sprintf "{\"le\": %s, \"count\": %d}" (json_float le) c)
            end)
          buckets;
        Buffer.add_string buf "]");
      Buffer.add_string buf "}")
    (snapshot registry);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf
