(* infoflow — command-line interface to the information-flow library.

   Subcommands mirror the pipeline of the paper:
     generate-model    synthesise a betaICM
     generate-corpus   synthesise a raw tweet corpus
     train             tweets -> inferred graph + trained betaICM
     estimate          flow probability queries (incl. conditional)
     batch             answer a JSONL file of queries through the engine
     stream            maintain a live betaICM from a JSONL evidence log
     serve             answer queries over TCP while evidence streams in
     requests          fetch a running server's flight recorder
     impact            impact (dispersion) distribution of a source
     calibrate         self-test a model with the bucket experiment

   Shared flag specs (seed, observability, MCMC, engine, checkpoint and
   on-error knobs) live in Cli_config, so every subcommand parses the
   same knob the same way. *)
open Cmdliner
module C = Cli_config
module Rng = Iflow_stats.Rng
module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Icm = Iflow_core.Icm
module Beta_icm = Iflow_core.Beta_icm
module Generator = Iflow_core.Generator
module Cascade = Iflow_core.Cascade
module Pseudo_state = Iflow_core.Pseudo_state
module Estimator = Iflow_mcmc.Estimator
module Cancel = Iflow_mcmc.Cancel
module Conditions = Iflow_mcmc.Conditions
module Nested = Iflow_mcmc.Nested
module Measures = Iflow_stats.Measures
module Bucket = Iflow_bucket.Bucket
module Model_io = Iflow_io.Model_io
module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Planner = Iflow_plan.Planner
module Server = Iflow_serve.Server
module Quota = Iflow_serve.Quota
module Sockio = Iflow_serve.Sockio
module Jsonl = Iflow_engine.Jsonl
module Obs_log = Iflow_obs.Log
module Obs_metrics = Iflow_obs.Metrics
module Obs_prometheus = Iflow_obs.Prometheus
module Obs_clock = Iflow_obs.Clock
open Iflow_twitter

let or_die = C.or_die

(* ----- generate-model ----- *)

let generate_model seed nodes edges output =
  let rng = Rng.create seed in
  let model = Generator.default_beta_icm rng ~nodes ~edges in
  Model_io.save_beta_icm output model;
  Printf.printf "wrote %s: betaICM with %d nodes, %d edges\n" output nodes edges

let generate_model_cmd =
  let nodes =
    Arg.(value & opt int 50 & info [ "n"; "nodes" ] ~doc:"Number of nodes.")
  in
  let edges =
    Arg.(value & opt int 200 & info [ "m"; "edges" ] ~doc:"Number of edges.")
  in
  let output =
    Arg.(
      value & opt string "model.bicm"
      & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate-model"
       ~doc:"Synthesise a random betaICM (paper Section IV-A).")
    Term.(const generate_model $ C.seed_term $ nodes $ edges $ output)

(* ----- generate-corpus ----- *)

let generate_corpus seed users originals output =
  let rng = Rng.create seed in
  let g = Gen.preferential_attachment rng ~nodes:users ~mean_out_degree:4 in
  let truth = Generator.retweet_ground_truth rng g in
  let corpus =
    Corpus.generate ~params:{ Corpus.default_params with originals } rng truth
  in
  Model_io.save_tweets output corpus.Corpus.tweets;
  Model_io.save_icm (output ^ ".truth.icm") corpus.Corpus.truth;
  Printf.printf
    "wrote %s: %d tweets from %d users (%d dropped for sparsity)\n" output
    (List.length corpus.Corpus.tweets)
    users corpus.Corpus.dropped;
  Printf.printf "wrote %s.truth.icm: the generating ground truth\n" output

let generate_corpus_cmd =
  let users =
    Arg.(value & opt int 200 & info [ "users" ] ~doc:"Number of users.")
  in
  let originals =
    Arg.(
      value & opt int 2000 & info [ "originals" ] ~doc:"Original tweet count.")
  in
  let output =
    Arg.(
      value & opt string "tweets.tsv"
      & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Cmd.v
    (Cmd.info "generate-corpus"
       ~doc:"Synthesise a raw tweet corpus with ground truth.")
    Term.(const generate_corpus $ C.seed_term $ users $ originals $ output)

(* ----- train ----- *)

let train tweets_path output names_path =
  let tweets = Model_io.load_tweets tweets_path in
  let g, names, index = Preprocess.infer_graph tweets in
  let cascades = Preprocess.cascades tweets in
  let objects =
    Preprocess.to_attributed ~graph:g
      ~node_of_name:(fun n -> Hashtbl.find_opt index n)
      cascades
  in
  let model = Beta_icm.train_attributed g objects in
  Model_io.save_beta_icm output model;
  Model_io.save_names names_path names;
  Printf.printf
    "parsed %d tweets into %d cascades over %d users / %d inferred edges\n"
    (List.length tweets) (List.length cascades) (Digraph.n_nodes g)
    (Digraph.n_edges g);
  Printf.printf "wrote %s (betaICM) and %s (node id -> user name)\n" output
    names_path

let train_cmd =
  let tweets =
    Arg.(
      required
      & opt (some string) None
      & info [ "tweets" ] ~doc:"Tweet corpus (TSV: id author time text).")
  in
  let output =
    Arg.(
      value & opt string "trained.bicm"
      & info [ "o"; "output" ] ~doc:"Output betaICM file.")
  in
  let names =
    Arg.(
      value & opt string "trained.names"
      & info [ "names" ] ~doc:"Output user-name table.")
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:
         "Parse a tweet corpus, infer the graph from '@' references, and \
          train a betaICM from the attributed retweet evidence.")
    Term.(const train $ tweets $ output $ names)

(* ----- estimate ----- *)

(* one-line rendering of how an answer was produced, for --explain *)
let plan_string (r : Engine.result) =
  match r.Engine.plan with
  | Engine.Plan_exact { cone_nodes; validated } ->
    Printf.sprintf "exact (cone %d nodes%s)" cone_nodes
      (if validated then ", validated against MH" else "")
  | Engine.Plan_mh { fallback = Some reason } ->
    Printf.sprintf "mh (fallback: %s)" reason
  | Engine.Plan_mh { fallback = None } -> "mh"

let explain_flag =
  Arg.(
    value & flag
    & info [ "explain" ]
        ~doc:
          "Also report how each answer was produced: 'exact' with the \
           evaluated cone size when the query planner certified a \
           closed-form answer, 'mh' with the fallback reason otherwise.")

let estimate seed model_path src dst conditions engine_config config nested
    deadline deadline_ms delay_mean explain obs =
  C.obs_setup obs;
  let rng = Rng.create seed in
  let model = Model_io.load_beta_icm model_path in
  let icm = Beta_icm.expected_icm model in
  let engine = or_die (fun () -> Engine.create ~config:engine_config ~seed icm) in
  let query = Query.flow ~conditions ~src ~dst () in
  let conditions = Conditions.v conditions in
  let rid = Printf.sprintf "cli-%d-1" (Unix.getpid ()) in
  let ph = Engine.phases () in
  let cancel =
    match deadline_ms with
    | Some ms -> Cancel.with_budget ~budget_ns:(ms * 1_000_000) ()
    | None -> Cancel.none
  in
  let r =
    or_die (fun () ->
        try Engine.query ~rid ~phases:ph ~cancel ~on_deadline:`Partial engine query
        with Engine.Deadline_exceeded { rounds; _ } ->
          Printf.eprintf
            "infoflow estimate: deadline_exceeded — %d ms elapsed before any \
             usable round (%d completed)\n"
            (Option.value deadline_ms ~default:0)
            rounds;
          exit 2)
  in
  Obs_log.debug ~component:"estimate" ~rid
    "phases: plan %dns, sample %dns (%d rounds)" ph.Engine.plan_ns
    ph.Engine.sample_ns ph.Engine.rounds;
  Printf.printf "Pr(%d ~> %d%s) = %.5f\n" src dst
    (if Conditions.is_empty conditions then ""
     else Format.asprintf " | %a" Conditions.pp conditions)
    r.Engine.estimate;
  (match r.Engine.plan with
  | Engine.Plan_exact { cone_nodes; _ } ->
    Printf.printf "  exact (closed form, no sampling; %d cone nodes)\n"
      cone_nodes
  | Engine.Plan_mh _ ->
    Printf.printf
      "  R-hat %.4f, ESS %.0f, MCSE %.5f (%d samples, %d chains, %d domains)\n"
      r.Engine.rhat r.Engine.ess r.Engine.mcse r.Engine.total_samples
      r.Engine.chains_used (Engine.pool_size engine));
  if r.Engine.partial then
    Printf.printf
      "  partial: the %d ms deadline cut sampling short of convergence\n"
      (Option.value deadline_ms ~default:0);
  if explain then Printf.printf "  plan: %s\n" (plan_string r);
  if nested > 0 then begin
    let samples =
      Nested.flow_samples ~conditions rng model config ~reps:nested ~src ~dst
    in
    let mean, (lo, hi) = Nested.mean_and_interval samples in
    Printf.printf
      "uncertainty (%d sampled ICMs): mean %.5f, central 95%% [%.5f, %.5f]\n"
      nested mean lo hi
  end;
  match deadline with
  | None -> ()
  | Some deadline ->
    let latency =
      Iflow_mcmc.Delay.uniform_delay icm
        (Iflow_mcmc.Delay.Exponential delay_mean)
    in
    let p =
      Iflow_mcmc.Delay.probability_within ~conditions rng latency config ~src
        ~dst ~deadline
    in
    Printf.printf
      "Pr(%d ~> %d within %.3g time units; mean edge delay %.3g) = %.5f\n" src
      dst deadline delay_mean p

let estimate_cmd =
  let src =
    Arg.(required & opt (some int) None & info [ "src" ] ~doc:"Source node.")
  in
  let dst =
    Arg.(required & opt (some int) None & info [ "dst" ] ~doc:"Sink node.")
  in
  let conditions =
    Arg.(
      value & opt_all C.condition_conv []
      & info [ "c"; "condition" ]
          ~doc:
            "Flow condition SRC:DST:+ (flow known present) or SRC:DST:- \
             (known absent); repeatable.")
  in
  let nested =
    Arg.(
      value & opt int 0
      & info [ "nested" ]
          ~doc:"Also report uncertainty from this many sampled ICMs.")
  in
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ]
          ~doc:
            "Also report the probability of flow arriving within this many \
             time units, with exponential per-edge latency.")
  in
  let delay_mean =
    Arg.(
      value & opt float 1.0
      & info [ "delay-mean" ]
          ~doc:"Mean per-edge latency used with --deadline.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ]
          ~doc:
            "Wall-clock budget for answering the query itself. Sampling is \
             cancelled at the deadline: with at least one completed round \
             the partial estimate is printed (flagged), otherwise the \
             command exits 2 with deadline_exceeded. (Distinct from \
             --deadline, which asks about flow arrival time.)")
  in
  Cmd.v
    (Cmd.info "estimate"
       ~doc:
         "Estimate a (conditional) flow probability with multi-chain \
          Metropolis-Hastings sampling and convergence diagnostics.")
    Term.(
      const estimate $ C.seed_term $ C.model_required $ src $ dst $ conditions
      $ C.engine_term $ C.mcmc_term $ nested $ deadline $ deadline_ms
      $ delay_mean $ explain_flag $ C.obs_term)

(* ----- batch ----- *)

let batch seed model_path queries_path engine_config deadline_ms explain obs =
  C.obs_setup obs;
  let model = Model_io.load_beta_icm model_path in
  let icm = Beta_icm.expected_icm model in
  let engine = or_die (fun () -> Engine.create ~config:engine_config ~seed icm) in
  let lines =
    let ic = or_die (fun () -> open_in queries_path) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc lineno =
          match input_line ic with
          | line -> go ((lineno, line) :: acc) (lineno + 1)
          | exception End_of_file -> List.rev acc
        in
        go [] 1)
  in
  let queries =
    List.filter_map
      (fun (lineno, line) ->
        if String.trim line = "" then None
        else
          match Query.of_line ~lineno line with
          | Ok q -> Some q
          | Error msg ->
            Obs_log.err ~component:"batch" "%s: %s" queries_path msg;
            exit 1)
      lines
  in
  let rids =
    let pid = Unix.getpid () in
    Array.init (List.length queries) (fun i ->
        Printf.sprintf "cli-%d-%d" pid (i + 1))
  in
  let t0 = Obs_clock.now_ns () in
  (* without --deadline-ms, the plain query_all path — answers stay
     bit-for-bit identical to every release before deadlines existed *)
  let results =
    match deadline_ms with
    | None ->
      or_die (fun () ->
          List.map Result.ok (Engine.query_all ~rids engine queries))
    | Some ms ->
      (* each query gets its own fresh budget; an exhausted one answers
         typed instead of poisoning the rest of the file *)
      or_die (fun () ->
          List.mapi
            (fun i q ->
              let cancel = Cancel.with_budget ~budget_ns:(ms * 1_000_000) () in
              match
                Engine.query ~rid:rids.(i) ~cancel ~on_deadline:`Partial engine
                  q
              with
              | r -> Ok r
              | exception Engine.Deadline_exceeded { rounds; _ } ->
                Error rounds)
            queries)
  in
  let elapsed = Obs_clock.seconds_of_ns (Obs_clock.now_ns () - t0) in
  Printf.printf "query\testimate\trhat\tess\tmcse\tsamples\tcached%s\n"
    (if explain then "\tplan" else "");
  List.iter2
    (fun q result ->
      match result with
      | Ok (r : Engine.result) ->
        Printf.printf "%s\t%.5f\t%.4f\t%.0f\t%.5f\t%d\t%s%s\n" (Query.key q)
          r.Engine.estimate r.Engine.rhat r.Engine.ess r.Engine.mcse
          r.Engine.total_samples
          (if r.Engine.cached then "yes"
           else if r.Engine.partial then "partial"
           else "no")
          (if explain then "\t" ^ plan_string r else "")
      | Error rounds ->
        Printf.printf "%s\t-\t-\t-\t-\t0\tdeadline_exceeded%s\n" (Query.key q)
          (if explain then
             Printf.sprintf "\tcancelled after %d rounds" rounds
           else ""))
    queries results;
  let stats = Engine.cache_stats engine in
  Obs_log.info ~component:"batch"
    "answered %d queries in %.2fs (%.1f queries/s, %d domains); cache: %a"
    (List.length queries) elapsed
    (float_of_int (List.length queries) /. Float.max elapsed 1e-9)
    (Engine.pool_size engine) Iflow_engine.Lru.pp_stats stats

let batch_cmd =
  let queries =
    Arg.(
      required
      & opt (some string) None
      & info [ "queries" ]
          ~doc:
            "JSONL query file: one JSON object per line, e.g. \
             {\"type\":\"flow\",\"src\":0,\"dst\":5, \
             \"conditions\":[[0,3,\"+\"]]}, \
             {\"type\":\"community\",\"src\":0,\"sinks\":[3,4]}, or \
             {\"type\":\"joint\",\"flows\":[[0,3],[1,4]]}.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ]
          ~doc:
            "Per-query wall-clock budget. Sampling is cancelled at the \
             deadline: queries with at least one completed round report \
             their partial estimate (cached column reads 'partial'), \
             queries with none report 'deadline_exceeded'. Without this \
             flag, answers are bit-for-bit identical to previous releases.")
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:
         "Answer a JSONL file of flow queries through the parallel query \
          engine: multi-chain MH per query, adaptive stopping on R-hat and \
          MCSE, deduplication and an LRU result cache. Emits TSV with \
          diagnostics columns.")
    Term.(
      const batch $ C.seed_term $ C.model_required $ queries $ C.engine_term
      $ deadline_ms $ explain_flag $ C.obs_term)

(* ----- explain ----- *)

(* The planner's own view of a query, without answering it: what the
   engine would decide, and why. Runs no sampling at all. *)
let explain_query icm ~planner ~budget q =
  let targets =
    match Query.kind q with
    | Query.Flow { src; dst } -> [ (src, dst) ]
    | Query.Community { src; sinks } -> List.map (fun s -> (src, s)) sinks
    | Query.Joint { flows } -> flows
  in
  Printf.printf "%s\n" (Query.key q);
  if not planner then
    Printf.printf "  plan: mh — %s\n" (Planner.describe Planner.Disabled)
  else
    match
      Planner.plan ~budget icm ~targets ~conditions:(Query.conditions q)
    with
    | exception (Failure msg | Invalid_argument msg) ->
      Printf.printf "  error: %s\n" msg
    | Error reason ->
      Printf.printf "  plan: mh (fallback %s)\n    %s\n"
        (Planner.reason_label reason)
        (Planner.describe reason)
    | Ok e ->
      Printf.printf "  plan: exact — Pr = %.6f (%d cone nodes, %d edges, %d \
                     work units%s)\n"
        e.Planner.value e.Planner.cone_nodes e.Planner.cone_edges
        e.Planner.work
        (if e.Planner.dropped_conditions > 0 then
           Printf.sprintf ", %d vacuous conditions dropped"
             e.Planner.dropped_conditions
         else "");
      List.iter
        (fun (tp : Planner.target_plan) ->
          Printf.printf "  target %d ~> %d: Pr = %.6f, cone %d nodes / %d \
                         edges%s\n"
            tp.Planner.t_src tp.Planner.t_dst tp.Planner.probability
            tp.Planner.cone_nodes tp.Planner.cone_edges
            (match tp.Planner.path with
            | Some path ->
              ", path " ^ String.concat " -> " (List.map string_of_int path)
            | None -> ""))
        e.Planner.targets

let explain seed model_path src dst conditions queries_path engine_config obs =
  C.obs_setup obs;
  ignore seed;
  let model = Model_io.load_beta_icm model_path in
  let icm = Beta_icm.expected_icm model in
  let planner = engine_config.Engine.planner in
  let budget = engine_config.Engine.plan_budget in
  match (queries_path, src, dst) with
  | Some path, _, _ ->
    let ic = or_die (fun () -> open_in path) in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno =
          match input_line ic with
          | line ->
            (if String.trim line <> "" then
               match Query.of_line ~lineno line with
               | Ok q -> explain_query icm ~planner ~budget q
               | Error msg -> Obs_log.err ~component:"explain" "%s" msg);
            go (lineno + 1)
          | exception End_of_file -> ()
        in
        go 1)
  | None, Some src, Some dst ->
    explain_query icm ~planner ~budget (Query.flow ~conditions ~src ~dst ())
  | None, _, _ ->
    Obs_log.err ~component:"explain" "provide --src and --dst, or --queries";
    exit 1

let explain_cmd =
  let src =
    Arg.(value & opt (some int) None & info [ "src" ] ~doc:"Source node.")
  in
  let dst =
    Arg.(value & opt (some int) None & info [ "dst" ] ~doc:"Sink node.")
  in
  let conditions =
    Arg.(
      value & opt_all C.condition_conv []
      & info [ "c"; "condition" ]
          ~doc:"Flow condition SRC:DST:+ or SRC:DST:-; repeatable.")
  in
  let queries =
    Arg.(
      value
      & opt (some string) None
      & info [ "queries" ]
          ~doc:"Explain every query in this JSONL file (same format as batch).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Show how the query planner would answer a query without sampling: \
          'exact' with the closed-form value, evaluated cone and (on tree \
          cones) the unique path, or 'mh' with the typed fallback reason.")
    Term.(
      const explain $ C.seed_term $ C.model_required $ src $ dst $ conditions
      $ queries $ C.engine_term $ C.obs_term)

(* ----- stream ----- *)

let stream seed learner events_path format shards drift_report
    quarantine_report probes output metrics_every obs =
  C.obs_setup obs;
  let model, skip, version = C.load_initial ~component:"stream" learner in
  let fmt = C.resolve_format format events_path in
  (if fmt = `Bin && events_path = "-" then begin
     Obs_log.err ~component:"stream" "binary ingest cannot read stdin";
     exit 1
   end);
  let snapshot =
    or_die (fun () ->
        Iflow_stream.Snapshot.create ?checkpoint_path:learner.C.checkpoint
          ~keep:learner.C.keep_checkpoints ~id:version ~offset:skip model)
  in
  let engine =
    (* only pay for an engine when there is something to serve *)
    if probes = [] then None
    else
      Some
        (or_die (fun () ->
             Engine.create ~seed (Beta_icm.expected_icm model)))
  in
  let answer_probes version =
    match engine with
    | None -> ()
    | Some e ->
      List.iter
        (fun (src, dst) ->
          let q = Query.flow ~src ~dst () in
          match Engine.query e q with
          | r ->
            Printf.printf "version %d\t%s\t%.5f\t%s\n%!"
              version.Iflow_stream.Snapshot.id (Query.key q) r.Engine.estimate
              (if r.Engine.cached then "cached" else "sampled")
          | exception (Failure msg | Invalid_argument msg) ->
            Obs_log.warn ~component:"stream" "probe %s: %s" (Query.key q) msg)
        probes
  in
  (* periodic observability dump: rewrite the metrics file every
     [metrics_every] published versions, so a long-running ingest can be
     scraped while it runs *)
  let publishes = ref 0 in
  let on_publish v =
    answer_probes v;
    match (obs.C.metrics_out, metrics_every) with
    | Some path, Some every ->
      incr publishes;
      if !publishes mod every = 0 then
        Obs_prometheus.write_file Obs_metrics.default path
    | _ -> ()
  in
  let on_degraded ~stage e =
    Obs_log.warn ~component:"stream" "degraded (%s): %s" stage
      (Printexc.to_string e)
  in
  let on_quarantine ~line ~reason =
    if quarantine_report then
      Obs_log.warn ~component:"stream" "%s:%d: quarantined: %s" events_path
        line reason
  in
  let config =
    {
      Iflow_stream.Runner.batch = learner.C.batch;
      checkpoint_every = learner.C.checkpoint_every;
    }
  in
  let report =
    match fmt with
    | `Bin ->
      (* the sharded path has no drift detector (see Sharded) *)
      if drift_report then
        Obs_log.warn ~component:"stream"
          "--drift-report has no effect on binary ingest";
      let sharded =
        or_die (fun () ->
            Iflow_stream.Sharded.create ~shards ~forget:learner.C.forget model)
      in
      Fun.protect
        ~finally:(fun () -> Iflow_stream.Sharded.close sharded)
        (fun () ->
          or_die (fun () ->
              let reader = Iflow_stream.Binlog.Reader.open_ events_path in
              Iflow_stream.Runner.run_binlog ?engine ~skip
                ~on_error:learner.C.on_error ~on_degraded ~on_quarantine
                ~on_publish config sharded snapshot reader))
    | `Jsonl ->
      let online =
        or_die (fun () ->
            Iflow_stream.Online.create ~forget:learner.C.forget
              ~drift:(C.drift_config learner) model)
      in
      let ic, close =
        if events_path = "-" then (stdin, fun () -> ())
        else
          let ic = or_die (fun () -> open_in events_path) in
          (ic, fun () -> close_in_noerr ic)
      in
      Fun.protect ~finally:close (fun () ->
          or_die (fun () ->
              Iflow_stream.Runner.run ?engine ~skip
                ~on_error:learner.C.on_error ~on_degraded
                ~on_alert:(fun a ->
                  if drift_report then
                    Obs_log.warn ~component:"drift" "%a"
                      Iflow_stream.Drift.pp_alert a)
                ~on_quarantine ~on_publish config online snapshot
                (Iflow_stream.Runner.lines_of_channel ic)))
  in
  (match output with
  | Some path ->
    let final = report.Iflow_stream.Runner.final in
    Model_io.save_beta_icm
      ~meta:
        [
          ("offset", string_of_int final.Iflow_stream.Snapshot.offset);
          ("version", string_of_int final.Iflow_stream.Snapshot.id);
        ]
      path final.Iflow_stream.Snapshot.model;
    Printf.printf "wrote %s\n" path
  | None -> ());
  (match engine with
  | Some e ->
    Obs_log.info ~component:"stream" "engine cache after swaps: %a"
      Iflow_engine.Lru.pp_stats (Engine.cache_stats e)
  | None -> ());
  Obs_log.info ~component:"stream" "%a" Iflow_stream.Runner.pp_report report;
  C.check_quarantine_rate ~component:"stream" learner
    report.Iflow_stream.Runner.stats

let events_term =
  Arg.(
    value & opt string "-"
    & info [ "events" ]
        ~doc:
          "Append-only JSONL event log (attributed / trace evidence and \
           add_nodes / add_edges / remove_edges graph changes); '-' reads \
           stdin.")

let drift_report_term =
  Arg.(
    value & flag
    & info [ "drift-report" ] ~doc:"Print every drift alert as it fires.")

let quarantine_report_term =
  Arg.(
    value & flag
    & info [ "quarantine-report" ]
        ~doc:
          "Print every quarantined evidence line (with its line number and \
           reason) as it is rejected.")

let stream_cmd =
  let probes =
    Arg.(
      value & opt_all C.probe_conv []
      & info [ "probe" ]
          ~doc:
            "Flow query SRC:DST answered through the engine after every \
             hot-swap, showing the live estimate track the stream; \
             repeatable.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Write the final model here.")
  in
  let metrics_every =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-every" ]
          ~doc:
            "Rewrite the --metrics-out file every N published versions (in \
             addition to the final dump on exit).")
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:
         "Consume an append-only evidence log (JSONL or binary segments, \
          sniffed by default) and maintain a live betaICM: batched \
          conjugate updates, optional exponential forgetting, graph-change \
          events, Hoeffding drift alerts (JSONL path), domain-sharded \
          binary ingest with bit-identical posteriors, versioned \
          checkpoints with replay-from-offset recovery, and hot-swap of \
          each published version into the query engine.")
    Term.(
      const stream $ C.seed_term $ C.learner_term $ events_term
      $ C.format_term $ C.shards_term $ drift_report_term
      $ quarantine_report_term $ probes $ output $ metrics_every $ C.obs_term)

(* ----- convert ----- *)

let convert input output segment_bytes strict obs =
  C.obs_setup obs;
  let bad = ref 0 in
  let skip_or_die what msg =
    if strict then begin
      Obs_log.err ~component:"convert" "%s: %s" what msg;
      exit 1
    end
    else begin
      incr bad;
      Obs_log.warn ~component:"convert" "skipping %s: %s" what msg
    end
  in
  if Iflow_stream.Binlog.is_binlog input then begin
    (* binary -> jsonl: the audit direction *)
    let oc, close =
      if output = "-" then (stdout, fun () -> ())
      else
        let oc = or_die (fun () -> open_out output) in
        (oc, fun () -> close_out oc)
    in
    let events = ref 0 in
    Fun.protect ~finally:close (fun () ->
        or_die (fun () ->
            let r = Iflow_stream.Binlog.Reader.open_ input in
            let rec go () =
              match Iflow_stream.Binlog.Reader.next r with
              | None -> ()
              | Some (Ok ev) ->
                output_string oc (Iflow_stream.Event.to_line ev);
                output_char oc '\n';
                incr events;
                go ()
              | Some (Error e) ->
                skip_or_die "damaged record"
                  (Iflow_stream.Binlog.error_message e);
                go ()
            in
            go ()));
    Obs_log.info ~component:"convert" "decoded %d events (%d damaged)"
      !events !bad
  end
  else begin
    (* jsonl -> binary: the fast-ingest direction *)
    let ic, close =
      if input = "-" then (stdin, fun () -> ())
      else
        let ic = or_die (fun () -> open_in input) in
        (ic, fun () -> close_in_noerr ic)
    in
    let w =
      or_die (fun () ->
          Iflow_stream.Binlog.Writer.create ?segment_bytes output)
    in
    Fun.protect
      ~finally:(fun () ->
        close ();
        Iflow_stream.Binlog.Writer.close w)
      (fun () ->
        let lineno = ref 0 in
        let rec go () =
          match Iflow_stream.Runner.lines_of_channel ic () with
          | None -> ()
          | Some line ->
            incr lineno;
            (match Iflow_stream.Event.of_line ~lineno:!lineno line with
            | Ok ev -> (
              try Iflow_stream.Binlog.Writer.append w ev
              with Invalid_argument msg ->
                skip_or_die (Printf.sprintf "line %d" !lineno) msg)
            | Error msg -> skip_or_die "line" msg);
            go ()
        in
        go ());
    Obs_log.info ~component:"convert" "encoded %d events in %d segments \
                                       (%d lines skipped)"
      (Iflow_stream.Binlog.Writer.events w)
      (Iflow_stream.Binlog.Writer.segments w)
      !bad
  end;
  if !bad > 0 then
    Printf.printf "converted with %d damaged inputs skipped\n" !bad

let convert_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"INPUT"
          ~doc:
            "Source log. Binary inputs (sniffed by magic bytes) decode to \
             JSONL; anything else encodes JSONL to binary segments. '-' \
             reads stdin (JSONL only).")
  in
  let output =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"OUTPUT"
          ~doc:
            "Destination: the JSONL file ('-' for stdout) or the binary \
             segment base path (OUTPUT, OUTPUT.1, ...).")
  in
  let segment_bytes =
    Arg.(
      value
      & opt (some int) None
      & info [ "segment-bytes" ]
          ~doc:"Roll binary segments at this size (default 64 MiB).")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Fail on the first damaged input line/record instead of \
             skipping it.")
  in
  Cmd.v
    (Cmd.info "convert"
       ~doc:
         "Transcode an event log between JSONL and the binary segment \
          format, in either direction (direction is sniffed from the \
          input). Damaged inputs are skipped and counted unless --strict. \
          Replaying either encoding yields bit-identical posteriors.")
    Term.(
      const convert $ input $ output $ segment_bytes $ strict $ C.obs_term)

(* ----- serve ----- *)

let serve seed host port workers queue_capacity max_connections quota_rate
    quota_burst flight_capacity slow_query_ms default_deadline_ms
    max_deadline_ms read_timeout_ms learner engine_config obs =
  C.obs_setup obs;
  (* Graceful shutdown via sigwait: with every thread parked in a
     blocking section (accept, condition waits), an ordinary
     Signal_handle never gets a safepoint to run on. Mask the signals
     before any thread spawns (they inherit the mask), then park one
     dedicated thread in Thread.wait_signal. *)
  ignore (Thread.sigmask Unix.SIG_BLOCK [ Sys.sigint; Sys.sigterm ]);
  let model, skip, version = C.load_initial ~component:"serve" learner in
  ignore skip;
  let engine =
    or_die (fun () ->
        Engine.create ~config:engine_config ~seed
          (Beta_icm.expected_icm model))
  in
  let quota =
    Option.map (fun rate -> { Quota.rate; burst = quota_burst }) quota_rate
  in
  (* --read-timeout-ms 0 switches the guard (and the reaper) off *)
  let read_timeout_ms =
    match read_timeout_ms with Some 0 -> None | v -> v
  in
  let config =
    {
      Server.default_config with
      Server.host;
      port;
      workers;
      queue_capacity;
      max_connections;
      quota;
      flight_capacity;
      slow_query_ms;
      default_deadline_ms;
      max_deadline_ms;
      read_timeout_ms;
    }
  in
  let server =
    or_die (fun () -> Server.create ~config ~initial_version:version ~engine ())
  in
  let online =
    or_die (fun () ->
        Iflow_stream.Online.create ~forget:learner.C.forget
          ~drift:(C.drift_config learner) model)
  in
  (* the network stream has no replayable prefix: evidence offsets (and
     checkpoints) restart at 0 even when --resume carried one over *)
  let snapshot =
    or_die (fun () ->
        Iflow_stream.Snapshot.create ?checkpoint_path:learner.C.checkpoint
          ~keep:learner.C.keep_checkpoints ~id:version ~offset:0 model)
  in
  let learner_report = ref None in
  let learner_thread =
    Thread.create
      (fun () ->
        match
          Iflow_stream.Runner.run ~engine ~on_error:learner.C.on_error
            ~on_degraded:(fun ~stage e -> Server.note_degraded server ~stage e)
            ~on_publish:(Server.on_publish server)
            ~on_quarantine:(fun ~line ~reason ->
              Obs_log.warn ~component:"serve"
                "evidence line %d quarantined: %s" line reason)
            {
              Iflow_stream.Runner.batch = learner.C.batch;
              checkpoint_every = learner.C.checkpoint_every;
            }
            online snapshot
            (Server.ingest_source server)
        with
        | report -> learner_report := Some report
        | exception e ->
          Obs_log.err ~component:"serve" "learner failed: %s"
            (Printexc.to_string e))
      ()
  in
  or_die (fun () -> Server.start server);
  Printf.printf "infoflow serve: listening on %s:%d (model version %d)\n%!"
    host (Server.port server) version;
  let (_ : Thread.t) =
    Thread.create
      (fun () ->
        let signal = Thread.wait_signal [ Sys.sigint; Sys.sigterm ] in
        Obs_log.info ~component:"serve" "signal %d: shutting down" signal;
        Server.stop server)
      ()
  in
  Server.wait server;
  Thread.join learner_thread;
  let s = Server.stats server in
  Obs_log.info ~component:"serve"
    "served %d connections: %d requests, %d answered, %d shed (%d capacity, \
     %d quota, %d deadline), %d bad, %d engine errors, %d evidence lines"
    s.Server.connections s.Server.requests s.Server.answered
    (s.Server.shed_capacity + s.Server.shed_quota + s.Server.shed_deadline)
    s.Server.shed_capacity s.Server.shed_quota s.Server.shed_deadline
    s.Server.bad_requests s.Server.engine_errors s.Server.evidence_lines;
  match !learner_report with
  | Some report ->
    Obs_log.info ~component:"serve" "%a" Iflow_stream.Runner.pp_report report;
    C.check_quarantine_rate ~component:"serve" learner
      report.Iflow_stream.Runner.stats
  | None -> ()

let serve_cmd =
  let host =
    Arg.(
      value & opt string Server.default_config.Server.host
      & info [ "host" ] ~doc:"Bind address.")
  in
  let port =
    Arg.(
      value & opt int 7411
      & info [ "port" ]
          ~doc:"TCP port; 0 picks an ephemeral one (printed on startup).")
  in
  let workers =
    Arg.(
      value & opt int Server.default_config.Server.workers
      & info [ "workers" ]
          ~doc:"Executor threads draining the request queue.")
  in
  let queue_capacity =
    Arg.(
      value & opt int Server.default_config.Server.queue_capacity
      & info [ "queue-capacity" ]
          ~doc:
            "Bounded request-queue size; requests beyond it are shed \
             immediately with an over_capacity response.")
  in
  let max_connections =
    Arg.(
      value & opt int Server.default_config.Server.max_connections
      & info [ "max-connections" ]
          ~doc:"Concurrent connections before shedding at accept time.")
  in
  let quota_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "quota-rate" ]
          ~doc:
            "Per-tenant sustained queries/second (token-bucket refill \
             rate); unset disables quotas.")
  in
  let quota_burst =
    Arg.(
      value & opt float Quota.default_config.Quota.burst
      & info [ "quota-burst" ]
          ~doc:"Per-tenant burst size (token-bucket capacity).")
  in
  let flight_capacity =
    Arg.(
      value & opt int Server.default_config.Server.flight_capacity
      & info [ "flight-capacity" ]
          ~doc:
            "Flight-recorder ring size: the last N requests stay \
             reconstructible via GET /debug/requests (id, answer path, \
             version, phase-decomposed latency). 0 disables the ring \
             (slow-query logging still works).")
  in
  let slow_query_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "slow-query-ms" ]
          ~doc:
            "Log a structured slow-query line (with the full flight \
             record) for any request whose admission-to-serialized wall \
             time reaches this many milliseconds; unset disables.")
  in
  let default_deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "default-deadline-ms" ]
          ~doc:
            "Deadline applied to requests that do not carry their own \
             (deadline_ms field or X-Deadline-Ms header); unset means no \
             implicit deadline.")
  in
  let max_deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-deadline-ms" ]
          ~doc:
            "Clamp client-supplied deadlines down to this cap; unset \
             leaves them unclamped.")
  in
  let read_timeout_ms =
    Arg.(
      value
      & opt (some int)
          Server.default_config.Server.read_timeout_ms
      & info [ "read-timeout-ms" ]
          ~doc:
            "Per-connection socket receive timeout (the slow-loris \
             guard): a peer sending nothing inside one window gets a \
             typed error and is disconnected; one never completing a \
             request line is reaped after ~4 idle windows. 0 disables.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve flow queries over TCP (raw JSONL sessions or HTTP POST \
          /query) while JSONL evidence posted to /evidence streams through \
          the online learner and hot-swaps model versions under live \
          traffic. Admission control: bounded request queue with typed \
          over_capacity shedding, optional per-tenant token-bucket quotas \
          (X-Tenant header / \"tenant\" field). Every request carries a \
          request id (client-supplied X-Request-Id / \"request_id\", or \
          server-minted), echoed on every answer; the last N requests are \
          reconstructible via GET /debug/requests or `infoflow requests`. \
          GET /metrics and /healthz expose the iflow_serve_* registry \
          live.")
    Term.(
      const serve $ C.seed_term $ host $ port $ workers $ queue_capacity
      $ max_connections $ quota_rate $ quota_burst $ flight_capacity
      $ slow_query_ms $ default_deadline_ms $ max_deadline_ms
      $ read_timeout_ms $ C.learner_term $ C.engine_term $ C.obs_term)

(* ----- impact ----- *)

let impact seed model_path src config =
  let rng = Rng.create seed in
  let model = Model_io.load_beta_icm model_path in
  let icm = Beta_icm.expected_icm model in
  let samples = Estimator.impact_samples rng icm config ~src in
  let floats = Array.map float_of_int samples in
  let module D = Iflow_stats.Descriptive in
  Printf.printf "impact of node %d over %d samples:\n" src
    (Array.length samples);
  Printf.printf "  mean %.2f, median %.0f, p90 %.0f, max %.0f\n"
    (D.mean floats) (D.median floats) (D.quantile floats 0.9)
    (snd (D.min_max floats));
  let hi = Float.max 1.0 (snd (D.min_max floats)) in
  Format.printf "%a@." D.pp_histogram
    (D.histogram ~lo:0.0 ~hi ~bins:(min 15 (int_of_float hi + 1)) floats)

let impact_cmd =
  let src =
    Arg.(required & opt (some int) None & info [ "src" ] ~doc:"Source node.")
  in
  Cmd.v
    (Cmd.info "impact"
       ~doc:"Sample the impact (number of reached nodes) distribution.")
    Term.(const impact $ C.seed_term $ C.model_required $ src $ C.mcmc_term)

(* ----- train-unattributed ----- *)

let train_unattributed tweets_path kind output names_path =
  let tweets = Model_io.load_tweets tweets_path in
  let g, names, index = Preprocess.infer_graph tweets in
  let aug, omni = Unattributed.augment_with_omnipotent g in
  let kind =
    match kind with
    | "url" -> Unattributed.Url
    | "hashtag" -> Unattributed.Hashtag
    | other ->
      Printf.eprintf "error: unknown item kind %S (use url or hashtag)\n" other;
      exit 1
  in
  let traces =
    Unattributed.item_traces ~kind
      ~node_of_name:(fun n -> Hashtbl.find_opt index n)
      ~n_nodes:(Iflow_graph.Digraph.n_nodes aug)
      ~omni tweets
  in
  let trace_list = List.map snd traces in
  Printf.printf "found %d items over %d users (+ omnipotent user %d)\n"
    (List.length traces)
    (Iflow_graph.Digraph.n_nodes g)
    omni;
  let rng = Rng.create 42 in
  let options =
    {
      Iflow_learn.Joint_bayes.default_options with
      burn_in = 200;
      samples = 300;
      thin = 2;
    }
  in
  let estimates = ref [] in
  for sink = 0 to Iflow_graph.Digraph.n_nodes g - 1 do
    let summary = Iflow_core.Summary.build aug trace_list ~sink in
    if Iflow_core.Summary.n_entries summary > 0 then
      estimates :=
        Iflow_learn.Joint_bayes.train ~options rng summary :: !estimates
  done;
  Printf.printf "trained %d sinks with the joint Bayes method\n"
    (List.length !estimates);
  let mean, std =
    Iflow_learn.Trainer.mean_std_arrays aug ~default_mean:0.0 ~default_std:0.0
      !estimates
  in
  (* persist posterior means as Beta pseudo-counts matching mean/std *)
  let betas =
    Array.mapi
      (fun e m ->
        match
          Iflow_stats.Dist.Beta.fit_moments ~mean:m
            ~variance:(std.(e) *. std.(e))
        with
        | Some b -> b
        | None ->
          (* point-like posterior: encode with strong pseudo-counts *)
          let m = Float.max 1e-4 (Float.min (1.0 -. 1e-4) m) in
          Iflow_stats.Dist.Beta.v (1.0 +. (1000.0 *. m))
            (1.0 +. (1000.0 *. (1.0 -. m))))
      mean
  in
  Model_io.save_beta_icm output (Beta_icm.create aug betas);
  Model_io.save_names names_path (Array.append names [| "<omnipotent>" |]);
  Printf.printf "wrote %s and %s (node %d is the omnipotent user)\n" output
    names_path omni

let train_unattributed_cmd =
  let tweets =
    Arg.(
      required
      & opt (some string) None
      & info [ "tweets" ] ~doc:"Tweet corpus (TSV).")
  in
  let kind =
    Arg.(
      value & opt string "url"
      & info [ "kind" ] ~doc:"Item kind to track: url or hashtag.")
  in
  let output =
    Arg.(
      value & opt string "unattributed.bicm"
      & info [ "o"; "output" ] ~doc:"Output betaICM (omnipotent-augmented).")
  in
  let names =
    Arg.(
      value & opt string "unattributed.names"
      & info [ "names" ] ~doc:"Output user-name table.")
  in
  Cmd.v
    (Cmd.info "train-unattributed"
       ~doc:
         "Learn edge probabilities from hashtag or URL adoption times \
          (unattributed evidence, joint Bayes method).")
    Term.(const train_unattributed $ tweets $ kind $ output $ names)

(* ----- seeds (influence maximisation) ----- *)

let seeds seed model_path k runs =
  let rng = Rng.create seed in
  let model = Model_io.load_beta_icm model_path in
  let icm = Beta_icm.expected_icm model in
  let chosen, spread = Iflow_mcmc.Influence.greedy_seeds ~runs rng icm ~k in
  Printf.printf "greedy %d-seed set: [%s]\n" k
    (String.concat "; " (List.map string_of_int chosen));
  Printf.printf "estimated expected spread: %.2f of %d nodes\n" spread
    (Beta_icm.n_nodes model)

let seeds_cmd =
  let k = Arg.(value & opt int 3 & info [ "k" ] ~doc:"Seed-set size.") in
  let runs =
    Arg.(
      value & opt int 300
      & info [ "runs" ] ~doc:"Simulations per spread evaluation.")
  in
  Cmd.v
    (Cmd.info "seeds"
       ~doc:
         "Pick a seed set maximising expected spread (lazy greedy / CELF).")
    Term.(const seeds $ C.seed_term $ C.model_required $ k $ runs)

(* ----- calibrate ----- *)

let calibrate seed model_path trials config =
  let rng = Rng.create seed in
  let model = Model_io.load_beta_icm model_path in
  let icm = Beta_icm.expected_icm model in
  let n = Beta_icm.n_nodes model in
  if n < 2 then (
    Printf.eprintf "error: model needs at least 2 nodes\n";
    exit 1);
  let predictions =
    List.init trials (fun _ ->
        let sampled = Beta_icm.sample_icm rng model in
        let state = Pseudo_state.sample rng sampled in
        let src = Rng.int rng n in
        let dst = (src + 1 + Rng.int rng (n - 1)) mod n in
        {
          Measures.estimate =
            Estimator.flow_probability rng icm config ~src ~dst;
          outcome = Pseudo_state.flow sampled state ~src ~dst;
        })
  in
  let bucket = Bucket.run ~bins:30 ~label:model_path predictions in
  Format.printf "%a@.%a@." Bucket.pp bucket Bucket.pp_summary bucket

let calibrate_cmd =
  let trials =
    Arg.(
      value & opt int 300
      & info [ "trials" ] ~doc:"Number of bucket-experiment trials.")
  in
  Cmd.v
    (Cmd.info "calibrate"
       ~doc:
         "Self-test a betaICM with the paper's bucket experiment: sample \
          outcomes from the model itself and check the estimator's \
          calibration.")
    Term.(const calibrate $ C.seed_term $ C.model_required $ trials $ C.mcmc_term)

(* ----- metrics ----- *)

let metrics seed model_path src dst engine_config json =
  Obs_metrics.set_recording true;
  let model = Model_io.load_beta_icm model_path in
  let icm = Beta_icm.expected_icm model in
  let n = Beta_icm.n_nodes model in
  if src >= n || dst >= n then begin
    Obs_log.err ~component:"metrics" "probe %d:%d out of range (model has %d nodes)"
      src dst n;
    exit 1
  end;
  let engine = or_die (fun () -> Engine.create ~config:engine_config ~seed icm) in
  (* one sampled query + one cache hit, so every mcmc/engine metric has
     something to show *)
  let q = Query.flow ~src ~dst () in
  ignore (or_die (fun () -> Engine.query engine q));
  ignore (or_die (fun () -> Engine.query engine q));
  print_string
    (if json then Obs_metrics.to_json_string Obs_metrics.default
     else Obs_prometheus.to_string Obs_metrics.default)

let metrics_cmd =
  let src =
    Arg.(value & opt int 0 & info [ "src" ] ~doc:"Probe query source node.")
  in
  let dst =
    Arg.(value & opt int 1 & info [ "dst" ] ~doc:"Probe query sink node.")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the JSON snapshot instead of Prometheus text format.")
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run one probe flow query with metrics recording on and print the \
          resulting registry snapshot (Prometheus text exposition by \
          default) to stdout — a smoke test of the observability layer.")
    Term.(
      const metrics $ C.seed_term $ C.model_required $ src $ dst
      $ C.engine_term $ json)

(* ----- requests ----- *)

(* raw one-request HTTP client over Sockio: GET /debug/requests from a
   running `infoflow serve` and return (status line, body). The server
   closes after one HTTP exchange, so reading to EOF delimits the
   body without parsing Content-Length. *)
let fetch_requests ~host ~port ~n =
  let addr =
    match
      Unix.getaddrinfo host (string_of_int port)
        [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM ]
    with
    | [] -> failwith (Printf.sprintf "cannot resolve %s:%d" host port)
    | ai :: _ -> ai.Unix.ai_addr
  in
  let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd addr;
      Sockio.write_all fd
        (Printf.sprintf
           "GET /debug/requests?n=%d HTTP/1.1\r\n\
            Host: %s:%d\r\nConnection: close\r\n\r\n"
           n host port);
      let r = Sockio.reader fd in
      let status =
        match Sockio.read_line r with
        | Sockio.Line l -> l
        | Sockio.Eof | Sockio.Too_long | Sockio.Timeout ->
          failwith "no HTTP status line"
      in
      let rec skip_headers () =
        match Sockio.read_line r with
        | Sockio.Line "" -> ()
        | Sockio.Line _ -> skip_headers ()
        | Sockio.Eof | Sockio.Too_long | Sockio.Timeout ->
          failwith "truncated HTTP response"
      in
      skip_headers ();
      let b = Buffer.create 4096 in
      let rec body () =
        match Sockio.read_line r with
        | Sockio.Line l ->
          Buffer.add_string b l;
          Buffer.add_char b '\n';
          body ()
        | Sockio.Eof | Sockio.Timeout -> ()
        | Sockio.Too_long -> failwith "over-long line in HTTP body"
      in
      body ();
      (status, Buffer.contents b))

let requests host port n json =
  let status, body =
    try or_die (fun () -> fetch_requests ~host ~port ~n) with
    | Unix.Unix_error (e, _, _) ->
      Obs_log.err ~component:"requests" "cannot reach %s:%d: %s" host port
        (Unix.error_message e);
      exit 1
  in
  (match String.split_on_char ' ' status with
  | _ :: "200" :: _ -> ()
  | _ ->
    Obs_log.err ~component:"requests" "%s:%d answered %S" host port status;
    exit 1);
  if json then print_string body
  else
    let records =
      match Jsonl.parse body with
      | Ok (Jsonl.List l) -> l
      | Ok _ ->
        Obs_log.err ~component:"requests" "body is not a JSON array";
        exit 1
      | Error msg ->
        Obs_log.err ~component:"requests" "bad JSON body: %s" msg;
        exit 1
    in
    let str k o =
      Option.value ~default:""
        (Option.bind (Jsonl.member k o) Jsonl.to_string)
    in
    let int_ k o =
      Option.value ~default:0 (Option.bind (Jsonl.member k o) Jsonl.to_int)
    in
    let num k o =
      match Jsonl.member k o with Some (Jsonl.Num f) -> f | _ -> Float.nan
    in
    let ms ns = float_of_int ns /. 1e6 in
    Printf.printf "%-5s %-18s %-8s %-6s %3s %9s %8s %9s %7s %6s %7s %-6s %s\n"
      "seq" "id" "tenant" "path" "ver" "queue_ms" "plan_ms" "sample_ms"
      "ser_ms" "rounds" "samples" "rhat" "query";
    List.iter
      (fun o ->
        let path = str "path" o in
        let note =
          match (str "error" o, str "fallback" o) with
          | "", "" -> ""
          | err, "" -> Printf.sprintf "  error=%s" err
          | _, fb -> Printf.sprintf "  fallback=%s" fb
        in
        let rhat = num "rhat" o in
        Printf.printf
          "%-5d %-18s %-8s %-6s %3d %9.3f %8.3f %9.3f %7.3f %6d %7d %-6s %s%s\n"
          (int_ "seq" o) (str "request_id" o) (str "tenant" o) path
          (int_ "version" o)
          (ms (int_ "queue_wait_ns" o))
          (ms (int_ "plan_ns" o))
          (ms (int_ "sample_ns" o))
          (ms (int_ "serialize_ns" o))
          (int_ "rounds" o) (int_ "samples" o)
          (if Float.is_nan rhat then "-" else Printf.sprintf "%.3f" rhat)
          (str "kind" o) note)
      records;
    Printf.printf "%d record%s\n" (List.length records)
      (if List.length records = 1 then "" else "s")

let requests_cmd =
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~doc:"Server address.")
  in
  let port =
    Arg.(value & opt int 7411 & info [ "port" ] ~doc:"Server port.")
  in
  let n =
    Arg.(
      value & opt int 32
      & info [ "n" ]
          ~doc:"How many recent requests to fetch (newest first).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Dump the raw JSON records instead of the table.")
  in
  Cmd.v
    (Cmd.info "requests"
       ~doc:
         "Fetch the flight recorder of a running `infoflow serve` (GET \
          /debug/requests) and print the last N requests: request id, \
          tenant, answer path (cache/exact/mh/error), model version, and \
          the phase-decomposed latency (queue wait, plan, sample, \
          serialize), plus sampler diagnostics for MH answers.")
    Term.(const requests $ host $ port $ n $ json)

(* ----- prom-check ----- *)

let prom_check path =
  let text =
    or_die (fun () ->
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic)))
  in
  match Obs_prometheus.check text with
  | Ok () ->
    Printf.printf "%s: ok\n" path;
    exit 0
  | Error msg ->
    Obs_log.err ~component:"prom-check" "%s: %s" path msg;
    exit 1

let prom_check_cmd =
  let file =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Prometheus text exposition to validate.")
  in
  Cmd.v
    (Cmd.info "prom-check"
       ~doc:
         "Validate a Prometheus text exposition file: sample-line syntax, \
          label well-formedness, and duplicate metric detection. Exits \
          non-zero on the first malformed line (CI gate).")
    Term.(const prom_check $ file)

let () =
  let info =
    Cmd.info "infoflow" ~version:"1.0.0"
      ~doc:"Learning stochastic models of information flow (ICDE 2012)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            generate_model_cmd; generate_corpus_cmd; train_cmd;
            train_unattributed_cmd; estimate_cmd; batch_cmd; explain_cmd;
            stream_cmd; convert_cmd; serve_cmd; requests_cmd; impact_cmd;
            seeds_cmd; calibrate_cmd; metrics_cmd; prom_check_cmd;
          ]))
