module Digraph = Iflow_graph.Digraph
module Beta = Iflow_stats.Dist.Beta
module Dist = Iflow_stats.Dist
module Rng = Iflow_stats.Rng

type t = { graph : Digraph.t; betas : Beta.t array }

let create graph betas =
  if Array.length betas <> Digraph.n_edges graph then
    invalid_arg "Beta_icm.create: size mismatch";
  { graph; betas = Array.copy betas }

let uninformed graph =
  { graph; betas = Array.make (Digraph.n_edges graph) Beta.uniform }

let graph t = t.graph
let edge_beta t e = t.betas.(e)
let n_nodes t = Digraph.n_nodes t.graph
let n_edges t = Digraph.n_edges t.graph

let train_attributed g objects =
  let m = Digraph.n_edges g in
  let alpha = Array.make m 1.0 and beta = Array.make m 1.0 in
  List.iter
    (fun (o : Evidence.attributed_object) ->
      if not (Evidence.attributed_object_is_consistent g o) then
        invalid_arg "Beta_icm.train_attributed: inconsistent object";
      for e = 0 to m - 1 do
        if o.active_edges.(e) then alpha.(e) <- alpha.(e) +. 1.0
        else if o.active_nodes.(Digraph.edge_src g e) then
          beta.(e) <- beta.(e) +. 1.0
      done)
    objects;
  { graph = g; betas = Array.init m (fun e -> Beta.v alpha.(e) beta.(e)) }

let observe_many t obs =
  let m = Array.length t.betas in
  let betas = Array.copy t.betas in
  List.iter
    (fun (edge, fired) ->
      if edge < 0 || edge >= m then invalid_arg "Beta_icm.observe_many: bad edge";
      let b = betas.(edge) in
      betas.(edge) <-
        (if fired then Beta.v (b.Beta.alpha +. 1.0) b.Beta.beta
         else Beta.v b.Beta.alpha (b.Beta.beta +. 1.0)))
    obs;
  { t with betas }

let observe t ~edge ~fired = observe_many t [ (edge, fired) ]

let grow t ~new_nodes ~new_edges =
  if new_nodes < 0 then invalid_arg "Beta_icm.grow: negative node count";
  let nodes = Digraph.n_nodes t.graph + new_nodes in
  let pairs =
    Digraph.edges t.graph @ List.map (fun (s, d, _) -> (s, d)) new_edges
  in
  let betas =
    Array.append t.betas (Array.of_list (List.map (fun (_, _, b) -> b) new_edges))
  in
  { graph = Digraph.of_edges ~nodes pairs; betas }

let remove_edges t pairs =
  let doomed = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace doomed p ()) pairs;
  let kept =
    List.filteri
      (fun _ pair -> not (Hashtbl.mem doomed pair))
      (Digraph.edges t.graph)
  in
  let kept_betas =
    List.filteri
      (fun e _ ->
        let pair = (Digraph.edge_src t.graph e, Digraph.edge_dst t.graph e) in
        not (Hashtbl.mem doomed pair))
      (Array.to_list t.betas)
  in
  {
    graph = Digraph.of_edges ~nodes:(Digraph.n_nodes t.graph) kept;
    betas = Array.of_list kept_betas;
  }

module Accum = struct
  type model = t

  type t = {
    mutable graph : Digraph.t;
    mutable alpha : float array;
    mutable beta : float array;
    mutable observed : int;
  }

  let of_model (m : model) =
    {
      graph = m.graph;
      alpha = Array.map (fun b -> b.Beta.alpha) m.betas;
      beta = Array.map (fun b -> b.Beta.beta) m.betas;
      observed = 0;
    }

  let graph t = t.graph
  let n_edges t = Array.length t.alpha
  let observed t = t.observed

  let freeze t : model =
    {
      graph = t.graph;
      betas = Array.init (Array.length t.alpha) (fun e ->
          Beta.v t.alpha.(e) t.beta.(e));
    }

  let observe t ~edge ~fired =
    if edge < 0 || edge >= Array.length t.alpha then
      invalid_arg "Beta_icm.Accum.observe: bad edge";
    if fired then t.alpha.(edge) <- t.alpha.(edge) +. 1.0
    else t.beta.(edge) <- t.beta.(edge) +. 1.0;
    t.observed <- t.observed + 1

  let decay t ~lambda =
    if not (lambda >= 0.0 && lambda < 1.0) then
      invalid_arg "Beta_icm.Accum.decay: lambda outside [0, 1)";
    if lambda > 0.0 then begin
      let keep = 1.0 -. lambda in
      for e = 0 to Array.length t.alpha - 1 do
        t.alpha.(e) <- keep *. t.alpha.(e);
        t.beta.(e) <- keep *. t.beta.(e)
      done
    end

  let reload t (m : model) =
    t.graph <- m.graph;
    t.alpha <- Array.map (fun b -> b.Beta.alpha) m.betas;
    t.beta <- Array.map (fun b -> b.Beta.beta) m.betas

  let grow t ~new_nodes ~new_edges =
    reload t (grow (freeze t) ~new_nodes ~new_edges)

  let remove_edges t pairs = reload t (remove_edges (freeze t) pairs)
end

let digest t =
  let fp = Iflow_stats.Fingerprint.create () in
  let module Fp = Iflow_stats.Fingerprint in
  Fp.add_int fp (Digraph.n_nodes t.graph);
  Fp.add_int fp (Digraph.n_edges t.graph);
  Digraph.iter_edges t.graph (fun _ { Digraph.src; dst } ->
      Fp.add_int fp src;
      Fp.add_int fp dst);
  Array.iter
    (fun b ->
      Fp.add_float fp b.Beta.alpha;
      Fp.add_float fp b.Beta.beta)
    t.betas;
  Fp.to_hex fp

let expected_icm t = Icm.create t.graph (Array.map Beta.mean t.betas)
let mode_icm t = Icm.create t.graph (Array.map Beta.mode t.betas)

let sample_icm rng t =
  Icm.create t.graph (Array.map (fun b -> Beta.sample rng b) t.betas)

let mean_std_icm rng ~mean ~std g =
  let m = Digraph.n_edges g in
  if Array.length mean <> m || Array.length std <> m then
    invalid_arg "Beta_icm.mean_std_icm: size mismatch";
  let probs =
    Array.init m (fun e ->
        let p = Dist.gaussian rng ~mean:mean.(e) ~std:std.(e) in
        Float.max 0.0 (Float.min 1.0 p))
  in
  Icm.create g probs

let pp ppf t =
  Format.fprintf ppf "beta_icm(%d nodes, %d edges)" (n_nodes t) (n_edges t)
