lib/learn/goyal.ml: Array Float Hashtbl Iflow_core List Trainer
