lib/mcmc/influence.mli: Iflow_core Iflow_stats
