module Beta_icm = Iflow_core.Beta_icm
module Descriptive = Iflow_stats.Descriptive
module Beta = Iflow_stats.Dist.Beta

let flow_samples ?conditions rng model config ~reps ~src ~dst =
  if reps <= 0 then invalid_arg "Nested.flow_samples: reps <= 0";
  Array.init reps (fun _ ->
      let icm = Beta_icm.sample_icm rng model in
      Estimator.flow_probability ?conditions rng icm config ~src ~dst)

let gaussian_flow_samples ?conditions rng graph ~mean ~std config ~reps ~src
    ~dst =
  if reps <= 0 then invalid_arg "Nested.gaussian_flow_samples: reps <= 0";
  Array.init reps (fun _ ->
      let icm = Beta_icm.mean_std_icm rng ~mean ~std graph in
      Estimator.flow_probability ?conditions rng icm config ~src ~dst)

let fit_beta samples =
  if Array.length samples < 2 then None
  else
    Beta.fit_moments ~mean:(Descriptive.mean samples)
      ~variance:(Descriptive.variance samples)

let mean_and_interval samples =
  ( Descriptive.mean samples,
    (Descriptive.quantile samples 0.025, Descriptive.quantile samples 0.975) )
