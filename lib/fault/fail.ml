module Metrics = Iflow_obs.Metrics

let m_injected =
  Metrics.counter ~help:"Failpoint injections that actually fired"
    "iflow_fault_injections_total"

exception Injected of string

(* A point fires [Raise] for now; the action type leaves room for
   delays/returns without touching call sites. *)
type action = Raise

type trigger = {
  prob : float;            (* fire with this probability per evaluation *)
  mutable remaining : int; (* max 0 = unlimited; counts down otherwise *)
  action : action;
  mutable hits : int;
}

(* Fast path: one atomic load and a branch — the same discipline as
   Metrics.recording, so points can be planted at per-line / per-round
   frequency and cost nothing while disarmed. Everything behind the
   flag is guarded by [lock]; points are evaluated from pool domains. *)
let armed = Atomic.make false
let lock = Mutex.create ()
let points : (string, trigger) Hashtbl.t = Hashtbl.create 16

(* Deterministic splitmix64 stream for probability triggers, so a chaos
   run is reproducible given IFLOW_FAILPOINTS_SEED. *)
let rng_state = ref 0x2E3779B97F4A7C15
let set_seed seed = rng_state := seed lxor 0x2E3779B97F4A7C15

let next_uniform () =
  let z = !rng_state + 0x2E3779B97F4A7C15 in
  rng_state := z;
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  let z = (z lxor (z lsr 31)) land max_int in
  float_of_int z /. float_of_int max_int

let sync_armed () = Atomic.set armed (Hashtbl.length points > 0)

let arm ?(prob = 1.0) ?count name =
  if not (prob >= 0.0 && prob <= 1.0) then
    invalid_arg "Fail.arm: prob outside [0, 1]";
  (match count with
  | Some c when c < 1 -> invalid_arg "Fail.arm: count must be >= 1"
  | _ -> ());
  Mutex.protect lock (fun () ->
      Hashtbl.replace points name
        {
          prob;
          remaining = Option.value count ~default:0;
          action = Raise;
          hits = 0;
        };
      sync_armed ())

let disarm name =
  Mutex.protect lock (fun () ->
      Hashtbl.remove points name;
      sync_armed ())

let reset () =
  Mutex.protect lock (fun () ->
      Hashtbl.reset points;
      sync_armed ())

let hits name =
  Mutex.protect lock (fun () ->
      match Hashtbl.find_opt points name with
      | Some t -> t.hits
      | None -> 0)

(* spec grammar, after the FreeBSD/Rust `fail` crates:
     name=task;name=task;...
   where task is [P%][N*]raise or off, e.g.
     snapshot.rename=1%raise   io.read=3*raise   *=0.5%2*raise *)
let parse_task name task =
  let err fmt =
    Printf.ksprintf
      (fun m -> Error (Printf.sprintf "failpoint %s: %s" name m))
      fmt
  in
  let prob, rest =
    match String.index_opt task '%' with
    | Some i -> (
      match float_of_string_opt (String.sub task 0 i) with
      | Some p when p >= 0.0 && p <= 100.0 ->
        ( Some (p /. 100.0),
          String.sub task (i + 1) (String.length task - i - 1) )
      | Some _ | None -> (None, task))
    | None -> (None, task)
  in
  if prob = None && String.contains task '%' then
    err "bad probability in %S" task
  else
    let count, rest =
      match String.index_opt rest '*' with
      | Some i -> (
        match int_of_string_opt (String.sub rest 0 i) with
        | Some c when c >= 1 ->
          (Some c, String.sub rest (i + 1) (String.length rest - i - 1))
        | Some _ | None -> (None, rest))
      | None -> (None, rest)
    in
    if count = None && String.contains rest '*' then
      err "bad count in %S" task
    else
      match rest with
      | "raise" -> Ok (Some (Option.value prob ~default:1.0, count))
      | "off" -> Ok None
      | other -> err "unknown action %S (use raise or off)" other

let configure spec =
  let entries =
    List.filter (fun s -> String.trim s <> "")
      (String.split_on_char ';' spec)
  in
  let rec go = function
    | [] -> Ok ()
    | entry :: rest -> (
      match String.index_opt entry '=' with
      | None -> Error (Printf.sprintf "failpoint spec %S: missing '='" entry)
      | Some i -> (
        let name = String.trim (String.sub entry 0 i) in
        let task =
          String.trim (String.sub entry (i + 1) (String.length entry - i - 1))
        in
        if name = "" then Error (Printf.sprintf "failpoint spec %S: empty name" entry)
        else
          match parse_task name task with
          | Error _ as e -> e
          | Ok None ->
            disarm name;
            go rest
          | Ok (Some (prob, count)) ->
            arm ~prob ?count name;
            go rest))
  in
  go entries

let env_var = "IFLOW_FAILPOINTS"
let env_seed_var = "IFLOW_FAILPOINTS_SEED"

let setup_from_env () =
  (match Option.bind (Sys.getenv_opt env_seed_var) int_of_string_opt with
  | Some seed -> set_seed seed
  | None -> ());
  match Sys.getenv_opt env_var with
  | None | Some "" -> Ok ()
  | Some spec -> configure spec

(* Arm from the environment at load time, so any binary linking the
   library honours IFLOW_FAILPOINTS without code changes. A malformed
   spec must not be silently ignored in a chaos run: fail fast. *)
let () =
  match setup_from_env () with
  | Ok () -> ()
  | Error msg ->
    prerr_endline ("fatal: " ^ env_var ^ ": " ^ msg);
    exit 2

let evaluate name =
  let fire =
    Mutex.protect lock (fun () ->
        let t =
          match Hashtbl.find_opt points name with
          | Some t -> Some t
          | None -> Hashtbl.find_opt points "*"
        in
        match t with
        | None -> false
        | Some t ->
          if t.remaining < 0 then false
          else if t.prob < 1.0 && next_uniform () >= t.prob then false
          else begin
            if t.remaining > 0 then
              t.remaining <-
                (if t.remaining = 1 then -1 (* exhausted *) else t.remaining - 1);
            t.hits <- t.hits + 1;
            true
          end)
  in
  if fire then begin
    Metrics.inc m_injected;
    match Raise with Raise -> raise (Injected name)
  end

let point name = if Atomic.get armed then evaluate name
let enabled () = Atomic.get armed
