(** Per-tenant token-bucket quotas.

    Each tenant (the [X-Tenant] header or ["tenant"] field of a
    request) owns one bucket holding at most [burst] tokens, refilled
    continuously at [rate] tokens per second; a request costs one token
    and is denied — with a retry hint — when the bucket is dry. Buckets
    are created lazily on first sight of a tenant.

    Time is passed in by the caller (monotonic nanoseconds from
    {!Iflow_obs.Clock}), never read here, so quota decisions are a pure
    function of the admit sequence — tests drive a synthetic clock and
    get deterministic denials. Thread-safe. *)

type config = {
  rate : float;   (** sustained tokens (requests) per second per tenant *)
  burst : float;  (** bucket capacity — the tolerated spike size *)
}

val default_config : config
(** rate 100, burst 200. *)

type decision =
  | Granted
  | Denied of { retry_after_ns : int }
      (** earliest time the bucket will hold a full token again *)

type t

val create : config -> t
(** Raises [Invalid_argument] unless [rate > 0] and [burst >= 1]. *)

val admit : t -> now_ns:int -> tenant:string -> decision
(** Refill the tenant's bucket to [now_ns], then spend one token or
    deny. *)

val tenants : t -> int
(** Distinct tenants seen so far. *)

val tokens : t -> now_ns:int -> tenant:string -> float
(** Current bucket level (refilled to [now_ns]); [burst] for a tenant
    never seen. *)
