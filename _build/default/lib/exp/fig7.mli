(** Fig 7: accuracy of the unattributed trainers vs evidence volume.

    Four ground-truth in-star fragments (the paper's activation
    probability sets, two without skew and two with a skewed low edge);
    for growing object counts, train Ours (joint Bayes), Goyal, Filtered
    and Saito on the same synthetic traces and report RMSE against the
    ground truth, averaged over repetitions. The paper's shape: Ours
    converges, Saito is marginally worse, Goyal plateaus and is
    sometimes beaten by Filtered — most visibly under skew. *)

type method_name = Ours | Goyal | Filtered | Saito

val all_methods : method_name list
val method_label : method_name -> string

type point = {
  objects : int;
  rmse : (method_name * float) list; (** mean over repetitions *)
  ours_posterior_std : float;
      (** mean posterior std of the joint Bayes estimates — the paper's
          dashed uncertainty band *)
}

type panel = {
  panel_label : string;
  probs : float array; (** ground-truth activation probabilities *)
  points : point list;
}

val run : Scale.t -> Iflow_stats.Rng.t -> panel list
val report : Scale.t -> Iflow_stats.Rng.t -> Format.formatter -> panel list
