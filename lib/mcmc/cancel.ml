(* A cooperative cancellation token: one absolute monotonic-clock
   deadline fixed at creation, plus an explicit [fire] for
   client-disconnect and shutdown drain. The sampler polls [cancelled]
   at its round and step boundaries; nothing is ever interrupted
   preemptively, so a chain observes cancellation only between whole
   MH steps and the RNG stream it abandoned is simply never read
   again — cancellation cannot perturb the draws of anything that
   completes.

   [none] is the disarmed token every non-deadline caller shares: its
   check is one atomic load and one integer compare, which is what
   keeps the machinery's cost on deadline-free traffic inside the
   BENCH_PR10 < 1% budget. *)

type t = {
  deadline_ns : int; (* absolute Clock.now_ns; max_int = no deadline *)
  fired : string option Atomic.t; (* Some reason once explicitly fired *)
}

let none = { deadline_ns = max_int; fired = Atomic.make None }

let create ?deadline_ns () =
  let deadline_ns = Option.value deadline_ns ~default:max_int in
  { deadline_ns; fired = Atomic.make None }

let with_budget ~budget_ns () =
  if budget_ns < 0 then invalid_arg "Cancel.with_budget: negative budget";
  create ~deadline_ns:(Iflow_obs.Clock.now_ns () + budget_ns) ()

let deadline_ns t = if t.deadline_ns = max_int then None else Some t.deadline_ns

(* first fire wins: a token fired "disconnect" and then expiring still
   reports the explicit reason *)
let fire ?(reason = "cancelled") t =
  ignore (Atomic.compare_and_set t.fired None (Some reason) : bool)

let cancelled t =
  match Atomic.get t.fired with
  | Some _ -> true
  | None ->
    t.deadline_ns <> max_int && Iflow_obs.Clock.now_ns () >= t.deadline_ns

type status = Live | Expired | Fired of string

let status t =
  match Atomic.get t.fired with
  | Some reason -> Fired reason
  | None ->
    if t.deadline_ns <> max_int && Iflow_obs.Clock.now_ns () >= t.deadline_ns
    then Expired
    else Live

let reason t =
  match status t with
  | Live -> None
  | Expired -> Some "deadline expired"
  | Fired reason -> Some reason

let remaining_ns t =
  if t.deadline_ns = max_int then None
  else Some (t.deadline_ns - Iflow_obs.Clock.now_ns ())
