module Digraph = Iflow_graph.Digraph
module Beta_icm = Iflow_core.Beta_icm
module Accum = Beta_icm.Accum
module Evidence = Iflow_core.Evidence
module Metrics = Iflow_obs.Metrics

let m_applied =
  Metrics.counter ~help:"Evidence events applied to the online model"
    "iflow_stream_events_applied_total"

let m_observations =
  Metrics.counter ~help:"Per-edge Bernoulli trials absorbed"
    "iflow_stream_observations_total"

let m_graph_changes =
  Metrics.counter ~help:"Graph-change events applied"
    "iflow_stream_graph_changes_total"

let quarantined_counter reason =
  Metrics.counter ~labels:[ ("reason", reason) ]
    ~help:"Events quarantined instead of applied"
    "iflow_stream_quarantined_total"

let m_quar_parse = quarantined_counter "parse"
let m_quar_inconsistent = quarantined_counter "inconsistent"
let m_quar_unknown = quarantined_counter "unknown_ref"

let m_drift_alerts =
  Metrics.counter ~help:"Drift alerts raised by the Hoeffding checker"
    "iflow_stream_drift_alerts_total"

let m_flagged =
  Metrics.gauge ~help:"Edges currently flagged as drifted"
    "iflow_stream_flagged_edges"

type stats = {
  applied : int;
  observations : int;
  graph_changes : int;
  parse_errors : int;
  inconsistent : int;
  unknown_refs : int;
}

let quarantined s = s.parse_errors + s.inconsistent + s.unknown_refs

type t = {
  acc : Accum.t;
  forget : float;
  drift : Drift.t option;
  mutable applied : int;
  mutable graph_changes : int;
  mutable parse_errors : int;
  mutable inconsistent : int;
  mutable unknown_refs : int;
}

let create ?(forget = 0.0) ?drift model =
  if not (forget >= 0.0 && forget < 1.0) then
    invalid_arg "Online.create: forget outside [0, 1)";
  {
    acc = Accum.of_model model;
    forget;
    drift = Option.map (fun config -> Drift.create config model) drift;
    applied = 0;
    graph_changes = 0;
    parse_errors = 0;
    inconsistent = 0;
    unknown_refs = 0;
  }

let model t = Accum.freeze t.acc
let graph t = Accum.graph t.acc
let drift t = t.drift

let stats t =
  {
    applied = t.applied;
    observations = Accum.observed t.acc;
    graph_changes = t.graph_changes;
    parse_errors = t.parse_errors;
    inconsistent = t.inconsistent;
    unknown_refs = t.unknown_refs;
  }

let decay t = if t.forget > 0.0 then Accum.decay t.acc ~lambda:t.forget

let observe t ~edge ~fired =
  Accum.observe t.acc ~edge ~fired;
  Metrics.inc m_observations;
  match t.drift with
  | Some d -> (
    match Drift.observe d ~edge ~fired with
    | Some _alert ->
      Metrics.inc m_drift_alerts;
      Metrics.set m_flagged (float_of_int (Drift.flagged d))
    | None -> ())
  | None -> ()

(* ----- evidence events ----- *)

let in_range n v = v >= 0 && v < n

let apply_attributed t ~sources ~nodes ~edges =
  let g = Accum.graph t.acc in
  let n = Digraph.n_nodes g and m = Digraph.n_edges g in
  if not (List.for_all (in_range n) sources && List.for_all (in_range n) nodes)
  then begin
    t.unknown_refs <- t.unknown_refs + 1;
    Metrics.inc m_quar_unknown;
    `Quarantined "attributed: node id out of range"
  end
  else begin
    let active_nodes = Array.make n false in
    let actives = ref [] in
    let mark v =
      if not active_nodes.(v) then begin
        active_nodes.(v) <- true;
        actives := v :: !actives
      end
    in
    List.iter mark sources;
    List.iter mark nodes;
    let active_edges = Array.make m false in
    let unknown = ref None in
    List.iter
      (fun (s, d) ->
        match Digraph.find_edge g ~src:s ~dst:d with
        | Some e -> active_edges.(e) <- true
        | None -> if !unknown = None then unknown := Some (s, d))
      edges;
    match !unknown with
    | Some (s, d) ->
      t.unknown_refs <- t.unknown_refs + 1;
      Metrics.inc m_quar_unknown;
      `Quarantined (Printf.sprintf "attributed: unknown edge (%d, %d)" s d)
    | None ->
      let o = { Evidence.sources; active_nodes; active_edges } in
      if not (Evidence.attributed_object_is_consistent g o) then begin
        t.inconsistent <- t.inconsistent + 1;
        Metrics.inc m_quar_inconsistent;
        `Quarantined "attributed: inconsistent object"
      end
      else begin
        (* the train_attributed counting rule. Only edges with an
           active source carry information, and per-edge counters are
           independent, so visiting the out-edges of active nodes gives
           the same model as the batch rule's edge-id scan — without
           touching the other O(m) edges *)
        List.iter
          (fun u ->
            Digraph.iter_out g u (fun e ->
                observe t ~edge:e ~fired:active_edges.(e)))
          !actives;
        t.applied <- t.applied + 1;
        Metrics.inc m_applied;
        `Applied
      end
  end

let apply_trace t ~sources ~times =
  let g = Accum.graph t.acc in
  let n = Digraph.n_nodes g in
  match Evidence.trace_of_active ~sources ~times ~n with
  | exception Invalid_argument _ ->
    t.unknown_refs <- t.unknown_refs + 1;
    Metrics.inc m_quar_unknown;
    `Quarantined "trace: node id or time out of range"
  | tr ->
    if not (Evidence.trace_is_consistent g tr) then begin
      t.inconsistent <- t.inconsistent + 1;
      Metrics.inc m_quar_inconsistent;
      `Quarantined "trace: inconsistent activation times"
    end
    else begin
      (* naive frequency rule: u active at tu attempted every out-edge;
         v joining at tu+1 is a success, v provably not fresh at tu+1
         (never active, or active strictly later) a failure, v already
         active no information. As above, only out-edges of active
         nodes carry information, and per-edge independence makes the
         visit order immaterial *)
      let ts = tr.Evidence.times in
      let seen = Array.make n false in
      let actives = ref [] in
      let mark v =
        if not seen.(v) then begin
          seen.(v) <- true;
          actives := v :: !actives
        end
      in
      List.iter mark sources;
      List.iter (fun (v, _) -> mark v) times;
      List.iter
        (fun u ->
          let tu = ts.(u) in
          if tu >= 0 then
            Digraph.iter_out g u (fun e ->
                let tv = ts.(Digraph.edge_dst g e) in
                if tv = tu + 1 then observe t ~edge:e ~fired:true
                else if tv < 0 || tv > tu + 1 then
                  observe t ~edge:e ~fired:false))
        !actives;
      t.applied <- t.applied + 1;
      Metrics.inc m_applied;
      `Applied
    end

(* ----- graph-change events ----- *)

let reanchor_drift t =
  match t.drift with
  | Some d ->
    Drift.reset d (Accum.freeze t.acc);
    Metrics.set m_flagged 0.0
  | None -> ()

let apply_graph_change t what f =
  match f () with
  | () ->
    t.applied <- t.applied + 1;
    t.graph_changes <- t.graph_changes + 1;
    Metrics.inc m_applied;
    Metrics.inc m_graph_changes;
    reanchor_drift t;
    `Applied
  | exception Invalid_argument msg ->
    t.unknown_refs <- t.unknown_refs + 1;
    Metrics.inc m_quar_unknown;
    `Quarantined (Printf.sprintf "%s: %s" what msg)

let apply t event =
  match event with
  | Event.Attributed { sources; nodes; edges } ->
    apply_attributed t ~sources ~nodes ~edges
  | Event.Trace { sources; times } -> apply_trace t ~sources ~times
  | Event.Add_nodes { count } ->
    apply_graph_change t "add_nodes" (fun () ->
        Accum.grow t.acc ~new_nodes:count ~new_edges:[])
  | Event.Add_edges { edges; prior } ->
    apply_graph_change t "add_edges" (fun () ->
        Accum.grow t.acc ~new_nodes:0
          ~new_edges:(List.map (fun (s, d) -> (s, d, prior)) edges))
  | Event.Remove_edges { edges } ->
    apply_graph_change t "remove_edges" (fun () ->
        Accum.remove_edges t.acc edges)

let apply_line ?lineno t line =
  match Event.of_line ?lineno line with
  | Ok event -> apply t event
  | Error msg ->
    t.parse_errors <- t.parse_errors + 1;
    Metrics.inc m_quar_parse;
    `Quarantined msg

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "%d events applied (%d observations, %d graph changes), %d quarantined \
     (%d parse, %d inconsistent, %d unknown refs)"
    s.applied s.observations s.graph_changes (quarantined s) s.parse_errors
    s.inconsistent s.unknown_refs
