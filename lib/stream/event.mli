(** Events of the append-only evidence log.

    One JSON object per line, in the same dialect as the engine's query
    files ({!Iflow_engine.Jsonl}). Five event types:

    {v
    {"type":"attributed","sources":[0],"nodes":[0,3,5],"edges":[[0,3],[3,5]]}
    {"type":"trace","sources":[0],"times":[[3,1],[5,2]]}
    {"type":"add_nodes","count":2}
    {"type":"add_edges","edges":[[1,7],[2,7]],"alpha":1,"beta":1}
    {"type":"remove_edges","edges":[[0,3]]}
    v}

    Evidence events name nodes by id and edges by (src, dst) pair —
    never by edge id, which is not stable across graph changes. An
    attributed event lists the object's sources, every active node, and
    every traversed edge; a trace event lists activation times for the
    non-source active nodes (sources are at time 0, omitted nodes were
    never activated). [add_edges] may carry a Beta prior for the new
    edges ([alpha], [beta], both defaulting to 1).

    Decoding here is purely syntactic; semantic validation (consistency
    against the current graph) happens in {!Online}, which quarantines
    rather than crashes. *)

type t =
  | Attributed of {
      sources : int list;
      nodes : int list;      (** active node ids, sources included or not *)
      edges : (int * int) list;  (** traversed edges as (src, dst) *)
    }
  | Trace of {
      sources : int list;
      times : (int * int) list;  (** (node, activation time > 0) *)
    }
  | Add_nodes of { count : int }
  | Add_edges of {
      edges : (int * int) list;
      prior : Iflow_stats.Dist.Beta.t;
    }
  | Remove_edges of { edges : (int * int) list }

val of_attributed :
  Iflow_graph.Digraph.t -> Iflow_core.Evidence.attributed_object -> t
(** Encode a simulated (or parsed) cascade as a log event — the bridge
    from {!Iflow_core.Cascade.run} to the stream. *)

val of_trace : Iflow_core.Evidence.trace -> t

val of_line : ?lineno:int -> string -> (t, string) result
(** Decode one log line. [Error] carries a human-readable reason
    (malformed JSON, unknown type, wrong field shape); JSON parse
    failures name the byte offset of the damage within the line, and
    when [lineno] is given every error is prefixed with ["line N: "] so
    quarantine reports trace straight back to the offending line. *)

val to_line : t -> string
(** Encode as a single JSON line, parseable by {!of_line}. *)

val pp : Format.formatter -> t -> unit
