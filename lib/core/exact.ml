module Digraph = Iflow_graph.Digraph

(* Paper Equation (2):
   Pr[ s ~> k ex. X ] =
     1 - prod over edges (l, k) with l not in X of
           (1 - Pr[ s ~> l ex. X + {k} ] * p_{l,k})
   with Pr[ s ~> s ex. _ ] = 1. Sinks accumulate in X, so the recursion
   terminates; X is a bitmask over nodes. *)
let node_limit = 62

(* The raw recursion, unchecked: callers guard size and range. *)
let eq2 icm ~src ~dst =
  let g = Icm.graph icm in
  let memo = Hashtbl.create 1024 in
  let rec pr target exclude =
    if target = src then 1.0
    else begin
      match Hashtbl.find_opt memo (target, exclude) with
      | Some p -> p
      | None ->
        let exclude' = exclude lor (1 lsl target) in
        let product =
          Digraph.fold_in g target ~init:1.0 ~f:(fun acc e ->
              let l = Digraph.edge_src g e in
              if exclude land (1 lsl l) <> 0 then acc
              else acc *. (1.0 -. (pr l exclude' *. Icm.prob icm e)))
        in
        let p = 1.0 -. product in
        Hashtbl.add memo (target, exclude) p;
        p
    end
  in
  pr dst 0

let check_range name icm ~src ~dst =
  let n = Icm.n_nodes icm in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg ("Exact." ^ name ^ ": node out of range")

let flow_probability icm ~src ~dst =
  if Icm.n_nodes icm > node_limit then
    invalid_arg "Exact.flow_probability: more than 62 nodes";
  check_range "flow_probability" icm ~src ~dst;
  eq2 icm ~src ~dst

type error = Too_large of { nodes : int; limit : int } | Unsound of { join : int }

let pp_error ppf = function
  | Too_large { nodes; limit } ->
    Format.fprintf ppf "graph too large for bitmask recursion (%d > %d nodes)"
      nodes limit
  | Unsound { join } ->
    Format.fprintf ppf "parent flows share ancestry at node %d" join

(* Same recursion, but refusing (typed, not stringly) the two ways it
   can go wrong: graphs past the bitmask limit, and joins whose parent
   flows share ancestry inside the (src, dst) reachability cone — the
   shapes where Eq. 2's independence assumption fails (DESIGN.md §1 /
   §2h). [Iflow_plan] runs the same certificate with scalable bitsets;
   here n <= 62 so plain int masks do. *)
let flow_probability_checked icm ~src ~dst =
  let g = Icm.graph icm in
  let n = Digraph.n_nodes g in
  check_range "flow_probability_checked" icm ~src ~dst;
  if n > node_limit then Error (Too_large { nodes = n; limit = node_limit })
  else begin
    let pos e = Icm.prob icm e > 0.0 in
    let down = Array.make n false in
    let rec go_down v =
      if not down.(v) then begin
        down.(v) <- true;
        Digraph.iter_out g v (fun e -> if pos e then go_down (Digraph.edge_dst g e))
      end
    in
    go_down src;
    let up = Array.make n false in
    let rec go_up v =
      if not up.(v) then begin
        up.(v) <- true;
        Digraph.iter_in g v (fun e -> if pos e then go_up (Digraph.edge_src g e))
      end
    in
    go_up dst;
    let in_cone v = down.(v) && up.(v) in
    if src = dst then Ok 1.0
    else if not down.(dst) then Ok 0.0
    else begin
      (* per-node ancestor masks within the cone, self included *)
      let anc = Array.make n (-1) in
      let ancestors v =
        if anc.(v) >= 0 then anc.(v)
        else begin
          let mask = ref (1 lsl v) in
          let stack = ref [ v ] in
          while !stack <> [] do
            match !stack with
            | [] -> ()
            | u :: rest ->
              stack := rest;
              Digraph.iter_in g u (fun e ->
                  if pos e then begin
                    let w = Digraph.edge_src g e in
                    if in_cone w && !mask land (1 lsl w) = 0 then begin
                      mask := !mask lor (1 lsl w);
                      stack := w :: !stack
                    end
                  end)
          done;
          anc.(v) <- !mask;
          !mask
        end
      in
      let src_bit = 1 lsl src in
      let unsound = ref (-1) in
      for k = 0 to n - 1 do
        if !unsound < 0 && in_cone k && k <> src then begin
          let parents = ref [] in
          Digraph.iter_in g k (fun e ->
              if pos e then begin
                let l = Digraph.edge_src g e in
                if in_cone l then parents := l :: !parents
              end);
          let rec pairs = function
            | [] -> ()
            | p :: rest ->
              List.iter
                (fun q ->
                  if !unsound < 0 then
                    if p = q then begin
                      if p <> src then unsound := k
                    end
                    else if ancestors p land ancestors q land lnot src_bit <> 0
                    then unsound := k)
                rest;
              pairs rest
          in
          pairs !parents
        end
      done;
      if !unsound >= 0 then Error (Unsound { join = !unsound })
      else Ok (eq2 icm ~src ~dst)
    end
  end

(* Shared brute-force loop: fold a function over every pseudo-state with
   its probability. *)
let fold_pseudo_states icm ~init ~f =
  let m = Icm.n_edges icm in
  if m > 24 then invalid_arg "Exact: brute force limited to 24 edges";
  let state = Pseudo_state.create m in
  let acc = ref init in
  for code = 0 to (1 lsl m) - 1 do
    let prob = ref 1.0 in
    for e = 0 to m - 1 do
      let active = code land (1 lsl e) <> 0 in
      Pseudo_state.set state e active;
      let p = Icm.prob icm e in
      prob := !prob *. (if active then p else 1.0 -. p)
    done;
    if !prob > 0.0 then acc := f !acc state !prob
  done;
  !acc

let brute_force_flow icm ~src ~dst =
  fold_pseudo_states icm ~init:0.0 ~f:(fun acc state prob ->
      if Pseudo_state.flow icm state ~src ~dst then acc +. prob else acc)

let satisfies icm state conditions =
  List.for_all
    (fun (u, v, a) -> Pseudo_state.flow icm state ~src:u ~dst:v = a)
    conditions

let brute_force_conditional icm ~conditions ~src ~dst =
  let joint, marginal =
    fold_pseudo_states icm ~init:(0.0, 0.0)
      ~f:(fun (joint, marginal) state prob ->
        if satisfies icm state conditions then begin
          let marginal = marginal +. prob in
          if Pseudo_state.flow icm state ~src ~dst then (joint +. prob, marginal)
          else (joint, marginal)
        end
        else (joint, marginal))
  in
  if marginal <= 0.0 then
    failwith "Exact.brute_force_conditional: conditions have probability 0";
  joint /. marginal

let brute_force_community icm ~src ~sinks =
  fold_pseudo_states icm ~init:0.0 ~f:(fun acc state prob ->
      let reached = Pseudo_state.reachable icm state ~sources:[ src ] in
      if List.for_all (fun v -> reached.(v)) sinks then acc +. prob else acc)

let brute_force_impact icm ~src =
  let n = Icm.n_nodes icm in
  let impact = Array.make n 0.0 in
  let _ =
    fold_pseudo_states icm ~init:() ~f:(fun () state prob ->
        let reached = Pseudo_state.reachable icm state ~sources:[ src ] in
        let count = ref 0 in
        Array.iteri (fun v r -> if r && v <> src then incr count) reached;
        impact.(!count) <- impact.(!count) +. prob)
  in
  impact
