open Iflow_core
open Iflow_learn
module Rng = Iflow_stats.Rng
module Descriptive = Iflow_stats.Descriptive

type method_name = Ours | Goyal | Filtered | Saito

let all_methods = [ Ours; Goyal; Filtered; Saito ]

let method_label = function
  | Ours -> "ours"
  | Goyal -> "goyal"
  | Filtered -> "filtered"
  | Saito -> "saito"

type point = {
  objects : int;
  rmse : (method_name * float) list;
  ours_posterior_std : float;
}

type panel = {
  panel_label : string;
  probs : float array;
  points : point list;
}

(* One synthetic object on the in-star: a random non-empty subset of
   parents holds the information; the cascade decides whether the sink
   activates. *)
let generate_traces rng icm ~parents ~objects =
  List.init objects (fun _ ->
      let sources =
        List.filter (fun _ -> Rng.bool rng) (List.init parents (fun j -> j))
      in
      let sources = if sources = [] then [ Rng.int rng parents ] else sources in
      Cascade.run_trace rng icm ~sources)

let jb_options scale =
  Scale.pick scale
    ~quick:
      { Joint_bayes.default_options with burn_in = 200; samples = 300; thin = 2 }
    ~full:
      { Joint_bayes.default_options with burn_in = 500; samples = 800; thin = 4 }

let evaluate scale rng ~probs ~objects =
  let d = Array.length probs in
  let g, icm, sink = Generator.in_star_icm ~probs in
  let traces = generate_traces rng icm ~parents:d ~objects in
  let summary = Summary.build g traces ~sink in
  let safe_rmse (est : Trainer.estimate) =
    if Array.length est.Trainer.parents = 0 then
      (* no usable evidence: score the prior-mean guess on every edge *)
      Iflow_stats.Measures.rmse ~expected:probs
        ~actual:(Array.make d 0.5)
    else begin
      (* parents that never appeared get the uniform-prior guess *)
      let full =
        Array.init d (fun j ->
            match Trainer.mean_for est j with Some m -> m | None -> 0.5)
      in
      Iflow_stats.Measures.rmse ~expected:probs ~actual:full
    end
  in
  if Summary.n_entries summary = 0 then None
  else begin
    let ours = Joint_bayes.train ~options:(jb_options scale) rng summary in
    let results =
      [
        (Ours, safe_rmse ours);
        (Goyal, safe_rmse (Iflow_learn.Goyal.train summary));
        (Filtered, safe_rmse (Iflow_learn.Filtered.train summary));
        (Saito, safe_rmse (Iflow_learn.Saito.train summary));
      ]
    in
    let std =
      if Array.length ours.Trainer.std = 0 then Float.nan
      else Descriptive.mean ours.Trainer.std
    in
    Some (results, std)
  end

let panels =
  [
    ("(a) {0.68, 0.73, 0.85}", [| 0.68; 0.73; 0.85 |]);
    ("(b) {0.15, 0.68, 0.83}", [| 0.15; 0.68; 0.83 |]);
    ("(c) {0.82, 0.83, 0.92, 0.92}", [| 0.82; 0.83; 0.92; 0.92 |]);
    ("(d) {0.06, 0.69, 0.74, 0.76}", [| 0.06; 0.69; 0.74; 0.76 |]);
  ]

let run scale rng =
  let object_counts =
    Scale.pick scale
      ~quick:[ 10; 30; 100; 300; 1000 ]
      ~full:[ 1; 10; 30; 100; 300; 1000; 3000; 10000 ]
  in
  let reps = Scale.pick scale ~quick:3 ~full:10 in
  List.map
    (fun (panel_label, probs) ->
      let points =
        List.map
          (fun objects ->
            let collected =
              List.filter_map
                (fun _ -> evaluate scale rng ~probs ~objects)
                (List.init reps (fun i -> i))
            in
            match collected with
            | [] ->
              { objects; rmse = List.map (fun m -> (m, Float.nan)) all_methods;
                ours_posterior_std = Float.nan }
            | _ ->
              let mean_for m =
                let vals =
                  List.map (fun (results, _) -> List.assoc m results) collected
                in
                Descriptive.mean (Array.of_list vals)
              in
              {
                objects;
                rmse = List.map (fun m -> (m, mean_for m)) all_methods;
                ours_posterior_std =
                  Descriptive.mean
                    (Array.of_list (List.map snd collected));
              })
          object_counts
      in
      { panel_label; probs; points })
    panels

let report scale rng ppf =
  let results = run scale rng in
  Format.fprintf ppf
    "@[<v>== Fig 7: RMSE of unattributed trainers vs #objects ==@,";
  List.iter
    (fun p ->
      Format.fprintf ppf "-- panel %s --@," p.panel_label;
      Format.fprintf ppf "%8s %10s %10s %10s %10s %12s@." "objects" "ours"
        "goyal" "filtered" "saito" "ours-std";
      List.iter
        (fun pt ->
          Format.fprintf ppf "%8d" pt.objects;
          List.iter
            (fun m -> Format.fprintf ppf " %10.4f" (List.assoc m pt.rmse))
            all_methods;
          Format.fprintf ppf " %12.4f@." pt.ours_posterior_std)
        p.points)
    results;
  Format.fprintf ppf "@]";
  results
