lib/exp/fig8_9.mli: Format Iflow_bucket Iflow_stats Iflow_twitter Scale Twitter_lab
