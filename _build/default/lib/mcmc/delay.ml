module Icm = Iflow_core.Icm
module Digraph = Iflow_graph.Digraph
module Rng = Iflow_stats.Rng
module Dist = Iflow_stats.Dist

type dist =
  | Constant of float
  | Uniform of float * float
  | Exponential of float
  | Gamma of { shape : float; scale : float }

let sample_dist rng = function
  | Constant c ->
    if c < 0.0 then invalid_arg "Delay: negative constant";
    c
  | Uniform (lo, hi) ->
    if lo < 0.0 || hi < lo then invalid_arg "Delay: bad uniform range";
    Rng.uniform_in rng lo hi
  | Exponential mean ->
    if mean <= 0.0 then invalid_arg "Delay: non-positive mean";
    -.mean *. Float.log (Float.max (Rng.uniform rng) 1e-300)
  | Gamma { shape; scale } -> Dist.gamma rng ~shape ~scale

type t = { icm : Icm.t; delays : dist array }

let create icm delays =
  if Array.length delays <> Icm.n_edges icm then
    invalid_arg "Delay.create: size mismatch";
  { icm; delays }

let uniform_delay icm dist =
  { icm; delays = Array.make (Icm.n_edges icm) dist }

let icm t = t.icm

(* Dijkstra on the active subgraph. Node count is small relative to the
   sampling loop, so a sorted-set frontier is plenty. *)
module Frontier = Set.Make (struct
  type t = float * int

  let compare = compare
end)

let earliest_arrival icm ~active ~delay ~src ~dst =
  let g = Icm.graph icm in
  let n = Digraph.n_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Delay.earliest_arrival: node out of range";
  let best = Array.make n Float.infinity in
  best.(src) <- 0.0;
  let frontier = ref (Frontier.singleton (0.0, src)) in
  let result = ref None in
  while !result = None && not (Frontier.is_empty !frontier) do
    let ((time, v) as entry) = Frontier.min_elt !frontier in
    frontier := Frontier.remove entry !frontier;
    if v = dst then result := Some time
    else if time <= best.(v) then
      Digraph.iter_out g v (fun e ->
          if active e then begin
            let w = Digraph.edge_dst g e in
            let t' = time +. delay e in
            if t' < best.(w) then begin
              best.(w) <- t';
              frontier := Frontier.add (t', w) !frontier
            end
          end)
  done;
  !result

type arrival_sample = { reached : int; missed : int; times : float array }

let arrival_samples ?conditions rng t config ~src ~dst =
  let times = ref [] in
  let reached = ref 0 and missed = ref 0 in
  let () =
    Estimator.fold_samples ?conditions rng t.icm config ~init:()
      ~f:(fun () state ->
        let active = Iflow_core.Pseudo_state.get state in
        let delay e = sample_dist rng t.delays.(e) in
        match earliest_arrival t.icm ~active ~delay ~src ~dst with
        | Some time ->
          incr reached;
          times := time :: !times
        | None -> incr missed)
  in
  { reached = !reached; missed = !missed; times = Array.of_list !times }

let probability_within ?conditions rng t config ~src ~dst ~deadline =
  let { reached; missed; times } =
    arrival_samples ?conditions rng t config ~src ~dst
  in
  let in_time =
    Array.fold_left (fun c time -> if time <= deadline then c + 1 else c) 0 times
  in
  float_of_int in_time /. float_of_int (reached + missed)
