module Digraph = Iflow_graph.Digraph

type attributed_object = {
  sources : int list;
  active_nodes : bool array;
  active_edges : bool array;
}

type attributed = attributed_object list

let attributed_object_is_consistent g o =
  let n = Digraph.n_nodes g and m = Digraph.n_edges g in
  Array.length o.active_nodes = n
  && Array.length o.active_edges = m
  && List.for_all (fun v -> v >= 0 && v < n && o.active_nodes.(v)) o.sources
  && begin
       let edges_ok = ref true in
       Array.iteri
         (fun e active ->
           if active then begin
             let { Digraph.src; dst } = Digraph.edge g e in
             if not (o.active_nodes.(src) && o.active_nodes.(dst)) then
               edges_ok := false
           end)
         o.active_edges;
       !edges_ok
     end
  && begin
       let is_source = Array.make n false in
       List.iter (fun v -> is_source.(v) <- true) o.sources;
       let nodes_ok = ref true in
       Array.iteri
         (fun v active ->
           if active && not is_source.(v) then begin
             let has_active_in =
               Digraph.fold_in g v ~init:false ~f:(fun acc e ->
                   acc || o.active_edges.(e))
             in
             if not has_active_in then nodes_ok := false
           end)
         o.active_nodes;
       !nodes_ok
     end

type trace = { trace_sources : int list; times : int array }
type unattributed = trace list

let trace_of_active ~sources ~times ~n =
  let arr = Array.make n (-1) in
  List.iter
    (fun (v, t) ->
      if v < 0 || v >= n || t < 0 then invalid_arg "Evidence.trace_of_active";
      arr.(v) <- t)
    times;
  List.iter (fun v -> arr.(v) <- 0) sources;
  { trace_sources = sources; times = arr }

let trace_is_consistent g tr =
  let n = Digraph.n_nodes g in
  Array.length tr.times = n
  && List.for_all (fun v -> v >= 0 && v < n && tr.times.(v) = 0) tr.trace_sources
  && begin
       let is_source = Array.make n false in
       List.iter (fun v -> is_source.(v) <- true) tr.trace_sources;
       let ok = ref true in
       Array.iteri
         (fun v t ->
           if t < -1 then ok := false
           else if t >= 0 && not is_source.(v) then begin
             let has_earlier_parent =
               List.exists
                 (fun u -> tr.times.(u) >= 0 && tr.times.(u) < t)
                 (Digraph.in_neighbours g v)
             in
             if not has_earlier_parent then ok := false
           end)
         tr.times;
       !ok
     end

let forget_attribution g o =
  let n = Digraph.n_nodes g in
  let times = Array.make n (-1) in
  List.iter (fun v -> times.(v) <- 0) o.sources;
  let queue = Queue.create () in
  List.iter (fun v -> Queue.add v queue) o.sources;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Digraph.iter_out g v (fun e ->
        if o.active_edges.(e) then begin
          let w = Digraph.edge_dst g e in
          if times.(w) < 0 then begin
            times.(w) <- times.(v) + 1;
            Queue.add w queue
          end
        end)
  done;
  { trace_sources = o.sources; times }
