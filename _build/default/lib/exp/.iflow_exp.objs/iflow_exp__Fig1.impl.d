lib/exp/fig1.ml: Format Iflow_bucket Scale Synthetic_bucket
