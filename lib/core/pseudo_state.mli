(** Pseudo-states: one boolean per edge, assigning it active or inactive
    irrespective of its parent node's activity (paper Section III-A).

    Pseudo-states are what the Metropolis-Hastings chain walks over;
    given a set of source nodes, the active state (which nodes hold the
    object) is derived by reachability through active edges. *)

type t

val create : int -> t
(** All-inactive state over the given number of edges. *)

val all_active : int -> t
val n_edges : t -> int
val get : t -> int -> bool
val set : t -> int -> bool -> unit
val flip : t -> int -> unit
val copy : t -> t
val count_active : t -> int
val active_list : t -> int list

val equal : t -> t -> bool

val sample : Iflow_stats.Rng.t -> Icm.t -> t
(** Independent Bernoulli draw per edge with the ICM's activation
    probabilities — a direct sample from the paper's Equation (3). *)

val log_prob : Icm.t -> t -> float
(** [ln Pr(x | M)] per Equation (3). [neg_infinity] when the state sets
    an edge of probability 0 active (or probability 1 inactive). *)

val reachable : Icm.t -> t -> sources:int list -> bool array
(** Derived active nodes: sources plus everything reachable through
    active edges. *)

val flow : Icm.t -> t -> src:int -> dst:int -> bool
(** Does the pseudo-state carry flow [src ~> dst]? *)

val reachable_ws :
  Iflow_graph.Reach.workspace -> Icm.t -> t -> sources:int list -> unit
(** Allocation-free {!reachable}: marks the derived active nodes in the
    workspace instead of returning an array; query them with
    {!Iflow_graph.Reach.marked}. The marks are invalidated by the next
    operation on the same workspace. *)

val flow_ws :
  Iflow_graph.Reach.workspace -> Icm.t -> t -> src:int -> dst:int -> bool
(** Allocation-free {!flow}, reusing the workspace's scratch BFS. *)

val derive_active_edges : Icm.t -> t -> sources:int list -> bool array
(** The edges that are active *and* have an active parent — the edge set
    of the active state this pseudo-state gives rise to. *)

val pp : Format.formatter -> t -> unit
