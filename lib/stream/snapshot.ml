module Beta_icm = Iflow_core.Beta_icm
module Engine = Iflow_engine.Engine
module Model_io = Iflow_io.Model_io
module Fail = Iflow_fault.Fail
module Retry = Iflow_fault.Retry
module Durable = Iflow_fault.Durable
module Metrics = Iflow_obs.Metrics

let m_fallbacks =
  Metrics.counter
    ~help:"Recoveries that skipped damaged checkpoints for an older generation"
    "iflow_stream_recover_fallbacks_total"

type version = {
  id : int;
  digest : string;
  model : Beta_icm.t;
  offset : int;
}

type t = {
  checkpoint_path : string option;
  keep : int;
  retry : Retry.policy;
  mutable current : version;
  mutable checkpoints : int;
}

let create ?checkpoint_path ?(keep = 1) ?(retry = Retry.default) ?(id = 0)
    ?(offset = 0) model =
  if id < 0 || offset < 0 then invalid_arg "Snapshot.create: negative id/offset";
  if keep < 1 then invalid_arg "Snapshot.create: keep must be >= 1";
  {
    checkpoint_path;
    keep;
    retry;
    current = { id; digest = Beta_icm.digest model; model; offset };
    checkpoints = 0;
  }

let current t = t.current
let published t = t.current.id
let checkpoints_written t = t.checkpoints

let publish t model ~offset =
  let v =
    {
      id = t.current.id + 1;
      digest = Beta_icm.digest model;
      model;
      offset;
    }
  in
  t.current <- v;
  v

let swap_into t engine =
  Engine.swap engine (Beta_icm.expected_icm t.current.model)

let checkpoint t =
  match t.checkpoint_path with
  | None -> ()
  | Some path ->
    (* Rotation happens once, outside the retry: a failed write then
       leaves generation 1 as the newest valid checkpoint, which
       [recover] falls back to. The write itself is atomic, so no
       attempt — interrupted or not — can tear an existing file. *)
    Durable.rotate path ~keep:t.keep;
    Retry.with_policy t.retry (fun () ->
        Fail.point "snapshot.checkpoint";
        Model_io.save_beta_icm
          ~meta:
            [
              ("offset", string_of_int t.current.offset);
              ("version", string_of_int t.current.id);
            ]
          path t.current.model);
    t.checkpoints <- t.checkpoints + 1

(* How many rotated generations recover is willing to walk; deeper
   rotations than this are not written by anything in this repo. *)
let max_generations = 64

let recover_one path =
  let model, meta = Model_io.load_beta_icm_meta path in
  let field name =
    match Option.bind (List.assoc_opt name meta) int_of_string_opt with
    | Some v when v >= 0 -> v
    | Some _ | None ->
      failwith
        (Printf.sprintf
           "%s: not a streaming checkpoint (missing or bad %S header field)"
           path name)
  in
  (model, field "offset", field "version")

let recover ?on_skip path =
  let candidates =
    match Durable.generations path ~limit:max_generations with
    | [] -> [ path ] (* fail with the real "no such file" error *)
    | c -> c
  in
  let rec go skipped = function
    | [] -> assert false
    | [ last ] ->
      (* the oldest generation: let its error propagate undecorated *)
      let r = recover_one last in
      if skipped > 0 then Metrics.add m_fallbacks skipped;
      r
    | candidate :: older -> (
      match recover_one candidate with
      | r ->
        if skipped > 0 then Metrics.add m_fallbacks skipped;
        r
      | exception (Failure msg | Sys_error msg) ->
        (match on_skip with
        | Some f -> f ~path:candidate ~reason:msg
        | None -> ());
        go (skipped + 1) older)
  in
  go 0 candidates
