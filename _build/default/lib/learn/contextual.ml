module Digraph = Iflow_graph.Digraph
module Beta = Iflow_stats.Dist.Beta
module Beta_icm = Iflow_core.Beta_icm
module Evidence = Iflow_core.Evidence

type context = From_source | From_relay

type counts = { mutable fired : int; mutable held : int }

type t = {
  graph : Digraph.t;
  source_counts : counts array; (* per edge *)
  relay_counts : counts array;
}

let graph t = t.graph

let train g objects =
  let m = Digraph.n_edges g in
  let fresh () = Array.init m (fun _ -> { fired = 0; held = 0 }) in
  let source_counts = fresh () and relay_counts = fresh () in
  List.iter
    (fun (o : Evidence.attributed_object) ->
      if not (Evidence.attributed_object_is_consistent g o) then
        invalid_arg "Contextual.train: inconsistent object";
      let is_source = Array.make (Digraph.n_nodes g) false in
      List.iter (fun v -> is_source.(v) <- true) o.Evidence.sources;
      for e = 0 to m - 1 do
        let parent = Digraph.edge_src g e in
        if o.Evidence.active_nodes.(parent) then begin
          let bucket =
            if is_source.(parent) then source_counts.(e) else relay_counts.(e)
          in
          if o.Evidence.active_edges.(e) then bucket.fired <- bucket.fired + 1
          else bucket.held <- bucket.held + 1
        end
      done)
    objects;
  { graph = g; source_counts; relay_counts }

let counts_for t context =
  match context with
  | From_source -> t.source_counts
  | From_relay -> t.relay_counts

let edge_beta t context e =
  let c = (counts_for t context).(e) in
  Beta.of_counts ~successes:c.fired ~failures:c.held

let model_for t context =
  let m = Digraph.n_edges t.graph in
  Beta_icm.create t.graph (Array.init m (fun e -> edge_beta t context e))

let pooled t =
  let m = Digraph.n_edges t.graph in
  Beta_icm.create t.graph
    (Array.init m (fun e ->
         let s = t.source_counts.(e) and r = t.relay_counts.(e) in
         Beta.of_counts ~successes:(s.fired + r.fired)
           ~failures:(s.held + r.held)))

let context_gap t e =
  Beta.mean (edge_beta t From_source e) -. Beta.mean (edge_beta t From_relay e)
