let lanczos_g = 7.0

let lanczos_coefficients =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

(* Lanczos approximation for ln Gamma(x), valid for x > 0. For x < 0.5 we
   use the reflection formula to stay in the region where the series
   converges well. *)
let rec log_gamma x =
  if not (Float.is_finite x) || x <= 0.0 then
    invalid_arg (Printf.sprintf "Special.log_gamma: x = %g <= 0" x)
  else if x < 0.5 then
    (* Gamma(x) Gamma(1-x) = pi / sin(pi x) *)
    Float.log (Float.pi /. Float.sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to Array.length lanczos_coefficients - 1 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. lanczos_g +. 0.5 in
    (0.5 *. Float.log (2.0 *. Float.pi))
    +. ((x +. 0.5) *. Float.log t)
    -. t
    +. Float.log !acc
  end

let log_beta a b = log_gamma a +. log_gamma b -. log_gamma (a +. b)

let log_choose n k =
  if k < 0 || k > n then
    invalid_arg (Printf.sprintf "Special.log_choose: n = %d, k = %d" n k)
  else
    log_gamma (float_of_int (n + 1))
    -. log_gamma (float_of_int (k + 1))
    -. log_gamma (float_of_int (n - k + 1))

(* Continued fraction for the incomplete beta function, evaluated with the
   modified Lentz algorithm. Converges quickly for x < (a+1)/(a+b+2). *)
let beta_continued_fraction a b x =
  let max_iterations = 300 in
  let epsilon = 3e-15 in
  let tiny = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < tiny then d := tiny;
  d := 1.0 /. !d;
  let h = ref !d in
  (try
     for m = 1 to max_iterations do
       let mf = float_of_int m in
       let m2 = 2.0 *. mf in
       (* even step *)
       let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
       d := 1.0 +. (aa *. !d);
       if Float.abs !d < tiny then d := tiny;
       c := 1.0 +. (aa /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1.0 /. !d;
       h := !h *. !d *. !c;
       (* odd step *)
       let aa =
         -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2))
       in
       d := 1.0 +. (aa *. !d);
       if Float.abs !d < tiny then d := tiny;
       c := 1.0 +. (aa /. !c);
       if Float.abs !c < tiny then c := tiny;
       d := 1.0 /. !d;
       let delta = !d *. !c in
       h := !h *. delta;
       if Float.abs (delta -. 1.0) < epsilon then raise Exit
     done
   with Exit -> ());
  !h

let betai a b x =
  if a <= 0.0 || b <= 0.0 then
    invalid_arg (Printf.sprintf "Special.betai: a = %g, b = %g" a b);
  if x <= 0.0 then 0.0
  else if x >= 1.0 then 1.0
  else begin
    let log_front =
      (a *. Float.log x) +. (b *. Float.log (1.0 -. x)) -. log_beta a b
    in
    let front = Float.exp log_front in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then
      front *. beta_continued_fraction a b x /. a
    else 1.0 -. (front *. beta_continued_fraction b a (1.0 -. x) /. b)
  end

let betai_inv a b p =
  let p = Float.max 0.0 (Float.min 1.0 p) in
  if p = 0.0 then 0.0
  else if p = 1.0 then 1.0
  else begin
    let lo = ref 0.0 and hi = ref 1.0 in
    for _ = 1 to 100 do
      let mid = 0.5 *. (!lo +. !hi) in
      if betai a b mid < p then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  end
