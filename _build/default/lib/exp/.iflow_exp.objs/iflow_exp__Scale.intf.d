lib/exp/scale.mli: Format Iflow_mcmc
