lib/core/generator.mli: Beta_icm Icm Iflow_graph Iflow_stats
