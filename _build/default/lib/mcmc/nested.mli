(** Nested Metropolis-Hastings: uncertainty over flow probabilities
    (paper Section III-E, Figs 3 and 10).

    A betaICM is a distribution over ICMs, so a flow probability under a
    betaICM is itself a random variable. We sample point ICMs from the
    betaICM, estimate the flow probability of each with the inner MH
    chain, and return the sample of flow probabilities. *)

val flow_samples :
  ?conditions:Conditions.t ->
  Iflow_stats.Rng.t -> Iflow_core.Beta_icm.t -> Estimator.config ->
  reps:int -> src:int -> dst:int -> float array
(** [reps] outer draws; each entry is the MH flow estimate of one
    sampled ICM. *)

val gaussian_flow_samples :
  ?conditions:Conditions.t ->
  Iflow_stats.Rng.t -> Iflow_graph.Digraph.t ->
  mean:float array -> std:float array -> Estimator.config ->
  reps:int -> src:int -> dst:int -> float array
(** Fig 10 variant: edge probabilities drawn independently from a
    clipped Gaussian approximation of the posterior (mean, std per
    edge). *)

val fit_beta : float array -> Iflow_stats.Dist.Beta.t option
(** Method-of-moments beta fit to a sample of probabilities — the
    dashed "implied beta" overlay of Fig 3. *)

val mean_and_interval : float array -> float * (float * float)
(** Sample mean and empirical central 95% interval. *)
