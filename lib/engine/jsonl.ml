type value =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of value list
  | Obj of (string * value) list

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let error c msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c; go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> error c (Printf.sprintf "expected %C" ch)

let expect_word c w =
  let n = String.length w in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = w then
    c.pos <- c.pos + n
  else error c (Printf.sprintf "expected %S" w)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some ('"' as x) | Some ('\\' as x) | Some ('/' as x) ->
        Buffer.add_char buf x; advance c; go ()
      | Some 'n' -> Buffer.add_char buf '\n'; advance c; go ()
      | Some 't' -> Buffer.add_char buf '\t'; advance c; go ()
      | Some 'r' -> Buffer.add_char buf '\r'; advance c; go ()
      | Some 'b' -> Buffer.add_char buf '\b'; advance c; go ()
      | Some 'f' -> Buffer.add_char buf '\012'; advance c; go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.text then error c "bad \\u escape";
        let hex = String.sub c.text c.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> error c "bad \\u escape"
        in
        c.pos <- c.pos + 4;
        (* BMP only; encode as UTF-8 *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
        end;
        go ()
      | _ -> error c "bad escape")
    | Some x -> Buffer.add_char buf x; advance c; go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with Some x when is_num_char x -> advance c; go () | _ -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> f
  | None -> error c (Printf.sprintf "bad number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error c "unexpected end of input"
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then (advance c; Obj [])
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; members ((k, v) :: acc)
        | Some '}' -> advance c; List.rev ((k, v) :: acc)
        | _ -> error c "expected ',' or '}'"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then (advance c; List [])
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' -> advance c; elements (v :: acc)
        | Some ']' -> advance c; List.rev (v :: acc)
        | _ -> error c "expected ',' or ']'"
      in
      List (elements [])
    end
  | Some '"' -> Str (parse_string c)
  | Some 't' -> expect_word c "true"; Bool true
  | Some 'f' -> expect_word c "false"; Bool false
  | Some 'n' -> expect_word c "null"; Null
  | Some _ -> Num (parse_number c)

let parse s =
  let c = { text = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then Error "trailing characters"
    else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_list = function List vs -> Some vs | _ -> None

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Num f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Format.fprintf ppf "%d" (int_of_float f)
    else Format.fprintf ppf "%g" f
  | Str s -> Format.fprintf ppf "%S" s
  | List vs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp)
      vs
  | Obj fields ->
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
         (fun ppf (k, v) -> Format.fprintf ppf "%S:%a" k pp v))
      fields
