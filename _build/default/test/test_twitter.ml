open Iflow_twitter
module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Rng = Iflow_stats.Rng
module Icm = Iflow_core.Icm
module Evidence = Iflow_core.Evidence
module Beta_icm = Iflow_core.Beta_icm
module Generator = Iflow_core.Generator

(* ---------- Tweet syntax ---------- *)

let test_mentions () =
  Alcotest.(check (list string)) "basic" [ "alice"; "bob_2" ]
    (Tweet.mentions "hey @alice and @bob_2!");
  Alcotest.(check (list string)) "none" [] (Tweet.mentions "no refs here");
  Alcotest.(check (list string)) "bare at" [] (Tweet.mentions "50 @ 10")

let test_hashtags () =
  Alcotest.(check (list string)) "basic" [ "ICDE"; "fb" ]
    (Tweet.hashtags "see you at #ICDE #fb");
  Alcotest.(check (list string)) "dedup" [ "x" ] (Tweet.hashtags "#x and #x");
  Alcotest.(check (list string)) "none" [] (Tweet.hashtags "hash # alone")

let test_urls () =
  Alcotest.(check (list string)) "short" [ "http://t.co/ab3x" ]
    (Tweet.urls "look http://t.co/ab3x now");
  Alcotest.(check (list string)) "https and dedup"
    [ "https://example.com/a-b" ]
    (Tweet.urls "https://example.com/a-b https://example.com/a-b");
  Alcotest.(check (list string)) "none" [] (Tweet.urls "no links")

let test_retweet_chain () =
  let chain, root = Tweet.retweet_chain "RT @a: RT @b: hello world" in
  Alcotest.(check (list string)) "chain" [ "a"; "b" ] chain;
  Alcotest.(check string) "root" "hello world" root;
  let chain, root = Tweet.retweet_chain "plain tweet" in
  Alcotest.(check (list string)) "no chain" [] chain;
  Alcotest.(check string) "root unchanged" "plain tweet" root;
  Alcotest.(check bool) "is_retweet" true (Tweet.is_retweet "RT @a: x");
  Alcotest.(check bool) "not retweet" false (Tweet.is_retweet "x RT @a: y")

let test_retweet_chain_truncated () =
  (* a chain cut mid-prefix must yield only the intact ancestors *)
  let chain, _root = Tweet.retweet_chain "RT @alice: RT @bo" in
  Alcotest.(check (list string)) "partial chain" [ "alice" ] chain

let test_retweet_roundtrip_and_truncation () =
  let original =
    Tweet.make ~id:1 ~author:"alice" ~time:0 ~text:(String.make 130 'x')
  in
  let rt1 = Tweet.retweet ~id:2 ~retweeter:"bob" ~time:1 ~of_:original in
  Alcotest.(check int) "truncated to limit" Tweet.max_length
    (String.length rt1.Tweet.text);
  let chain, root = Tweet.retweet_chain rt1.Tweet.text in
  Alcotest.(check (list string)) "attribution survives" [ "alice" ] chain;
  Alcotest.(check bool) "root is prefix of original" true
    (String.length root < 130
    && root = String.sub original.Tweet.text 0 (String.length root))

(* ---------- Corpus generation ---------- *)

let small_corpus seed =
  let rng = Rng.create seed in
  let g = Gen.preferential_attachment rng ~nodes:60 ~mean_out_degree:3 in
  let truth = Generator.skewed_ground_truth rng g in
  Corpus.generate
    ~params:
      {
        Corpus.default_params with
        originals = 300;
        drop_original_rate = 0.2;
        drop_retweet_rate = 0.05;
      }
    rng truth

let test_corpus_generation () =
  let c = small_corpus 101 in
  Alcotest.(check bool) "has tweets" true (List.length c.Corpus.tweets > 300);
  Alcotest.(check bool) "dropped some" true (c.Corpus.dropped > 0);
  (* sorted by time *)
  let rec sorted = function
    | (a : Tweet.t) :: (b :: _ as rest) -> a.Tweet.time <= b.Tweet.time && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "time sorted" true (sorted c.Corpus.tweets);
  Alcotest.(check (option int)) "name lookup" (Some 7)
    (Corpus.node_of_name c "user7")

let test_corpus_contains_retweets_and_items () =
  let c = small_corpus 102 in
  let tweets = c.Corpus.tweets in
  let retweets = List.filter (fun t -> Tweet.is_retweet t.Tweet.text) tweets in
  Alcotest.(check bool) "retweets present" true (List.length retweets > 20);
  let with_tags =
    List.filter (fun t -> Tweet.hashtags t.Tweet.text <> []) tweets
  in
  Alcotest.(check bool) "hashtags present" true (List.length with_tags > 20);
  let with_urls = List.filter (fun t -> Tweet.urls t.Tweet.text <> []) tweets in
  Alcotest.(check bool) "urls present" true (List.length with_urls > 20)

(* ---------- Preprocessing ---------- *)

let test_cascades_reconstruction () =
  let alice = Tweet.make ~id:1 ~author:"alice" ~time:0 ~text:"hello world" in
  let bob = Tweet.retweet ~id:2 ~retweeter:"bob" ~time:1 ~of_:alice in
  let carol = Tweet.retweet ~id:3 ~retweeter:"carol" ~time:2 ~of_:bob in
  let cascades = Preprocess.cascades [ alice; bob; carol ] in
  Alcotest.(check int) "one cascade" 1 (List.length cascades);
  let c = List.hd cascades in
  Alcotest.(check string) "root author" "alice" c.Preprocess.root_author;
  Alcotest.(check bool) "original observed" true c.Preprocess.original_observed;
  Alcotest.(check int) "two activations" 2
    (List.length c.Preprocess.activations);
  let parents =
    List.map (fun (ch, p, _) -> (ch, p)) c.Preprocess.activations
  in
  Alcotest.(check bool) "bob <- alice" true (List.mem ("bob", "alice") parents);
  Alcotest.(check bool) "carol <- bob" true (List.mem ("carol", "bob") parents)

let test_cascades_recover_missing_original () =
  (* the original tweet is absent: it must be reconstructed *)
  let alice = Tweet.make ~id:1 ~author:"alice" ~time:0 ~text:"breaking" in
  let bob = Tweet.retweet ~id:2 ~retweeter:"bob" ~time:1 ~of_:alice in
  let carol = Tweet.retweet ~id:3 ~retweeter:"carol" ~time:2 ~of_:bob in
  let cascades = Preprocess.cascades [ bob; carol ] in
  Alcotest.(check int) "one cascade" 1 (List.length cascades);
  let c = List.hd cascades in
  Alcotest.(check string) "recovered author" "alice" c.Preprocess.root_author;
  Alcotest.(check bool) "marked unobserved" false c.Preprocess.original_observed;
  (* the intermediate hop bob <- alice is recovered from carol's chain
     even if bob's own retweet were missing *)
  let cascades = Preprocess.cascades [ carol ] in
  let c = List.hd cascades in
  let parents =
    List.map (fun (ch, p, _) -> (ch, p)) c.Preprocess.activations
  in
  Alcotest.(check bool) "recovered intermediate" true
    (List.mem ("bob", "alice") parents)

let test_users_and_infer_graph () =
  let alice = Tweet.make ~id:1 ~author:"alice" ~time:0 ~text:"hi" in
  let bob = Tweet.retweet ~id:2 ~retweeter:"bob" ~time:1 ~of_:alice in
  let names = Preprocess.users [ alice; bob ] in
  Alcotest.(check (array string)) "users" [| "alice"; "bob" |] names;
  let g, names, index = Preprocess.infer_graph [ alice; bob ] in
  Alcotest.(check int) "nodes" 2 (Digraph.n_nodes g);
  Alcotest.(check int) "edges" 1 (Digraph.n_edges g);
  let a = Hashtbl.find index "alice" and b = Hashtbl.find index "bob" in
  Alcotest.(check bool) "edge alice->bob" true (Digraph.mem_edge g ~src:a ~dst:b);
  Alcotest.(check string) "names round trip" "alice" names.(a)

let test_to_attributed_consistency () =
  let c = small_corpus 103 in
  let cascades = Preprocess.cascades c.Corpus.tweets in
  let node_of_name = Corpus.node_of_name c in
  let objects =
    Preprocess.to_attributed ~graph:c.Corpus.graph ~node_of_name cascades
  in
  Alcotest.(check bool) "objects exist" true (List.length objects > 100);
  List.iter
    (fun o ->
      if not (Evidence.attributed_object_is_consistent c.Corpus.graph o) then
        Alcotest.fail "inconsistent attributed object")
    objects

(* Preprocessing fidelity: with nothing dropped, training on the parsed
   text must agree with training on the generator's own attribution
   records — the text round-trip loses (almost) nothing. Retweet data
   attributes a single parent per retweet, so the comparison is against
   the attribution ground truth, not against the multi-exposure ICM edge
   probabilities (the paper's Twitter experiments evaluate flow
   calibration for the same reason). *)
let test_pipeline_matches_ground_truth_attribution () =
  let rng = Rng.create 104 in
  let g = Gen.preferential_attachment rng ~nodes:40 ~mean_out_degree:3 in
  let truth = Generator.skewed_ground_truth rng g in
  let corpus =
    Corpus.generate
      ~params:
        {
          Corpus.default_params with
          originals = 1500;
          hashtag_prob = 0.0;
          url_prob = 0.0;
          offline_hashtag_rate = 0.0;
          drop_original_rate = 0.0;
          drop_retweet_rate = 0.0;
        }
      rng truth
  in
  let cascades = Preprocess.cascades corpus.Corpus.tweets in
  let parsed =
    Preprocess.to_attributed ~graph:g ~node_of_name:(Corpus.node_of_name corpus)
      cascades
  in
  let from_text = Beta_icm.train_attributed g parsed in
  let from_truth = Beta_icm.train_attributed g corpus.Corpus.truth_objects in
  let worst = ref 0.0 in
  for e = 0 to Digraph.n_edges g - 1 do
    let a = Iflow_stats.Dist.Beta.mean (Beta_icm.edge_beta from_text e) in
    let b = Iflow_stats.Dist.Beta.mean (Beta_icm.edge_beta from_truth e) in
    worst := Float.max !worst (Float.abs (a -. b))
  done;
  Alcotest.(check bool)
    (Printf.sprintf "worst edge-mean gap %.4f" !worst)
    true (!worst < 0.08)

(* ---------- Unattributed ---------- *)

let test_augment_with_omnipotent () =
  let g = Gen.path 3 in
  let aug, omni = Unattributed.augment_with_omnipotent g in
  Alcotest.(check int) "omni id" 3 omni;
  Alcotest.(check int) "nodes" 4 (Digraph.n_nodes aug);
  Alcotest.(check int) "edges" (2 + 3) (Digraph.n_edges aug);
  for v = 0 to 2 do
    Alcotest.(check bool) "omni edge" true (Digraph.mem_edge aug ~src:omni ~dst:v)
  done;
  (* original edges and ids preserved *)
  Alcotest.(check bool) "path edge kept" true (Digraph.mem_edge aug ~src:0 ~dst:1)

let test_item_traces () =
  let t1 = Tweet.make ~id:1 ~author:"user0" ~time:5 ~text:"go #x" in
  let t2 = Tweet.make ~id:2 ~author:"user1" ~time:9 ~text:"yes #x and #y" in
  let t3 = Tweet.make ~id:3 ~author:"user2" ~time:12 ~text:"#x again" in
  let node_of_name n =
    match n with
    | "user0" -> Some 0
    | "user1" -> Some 1
    | "user2" -> Some 2
    | _ -> None
  in
  let traces =
    Unattributed.item_traces ~min_users:2 ~kind:Unattributed.Hashtag
      ~node_of_name ~n_nodes:4 ~omni:3 [ t1; t2; t3 ]
  in
  (* with min_users 2: #y has a single user and is dropped; #x kept *)
  Alcotest.(check int) "one item" 1 (List.length traces);
  let all_traces =
    Unattributed.item_traces ~kind:Unattributed.Hashtag ~node_of_name
      ~n_nodes:4 ~omni:3 [ t1; t2; t3 ]
  in
  Alcotest.(check int) "default keeps single-user items" 2
    (List.length all_traces);
  let item, tr = List.hd traces in
  Alcotest.(check string) "item" "x" item;
  Alcotest.(check (array int)) "ranked times" [| 1; 2; 3; 0 |] tr.Evidence.times;
  Alcotest.(check (list int)) "omni source" [ 3 ] tr.Evidence.trace_sources

let test_item_traces_first_use_only () =
  let t1 = Tweet.make ~id:1 ~author:"user0" ~time:5 ~text:"#x" in
  let t2 = Tweet.make ~id:2 ~author:"user0" ~time:9 ~text:"#x again" in
  let t3 = Tweet.make ~id:3 ~author:"user1" ~time:7 ~text:"#x too" in
  let node_of_name n = if n = "user0" then Some 0 else Some 1 in
  let traces =
    Unattributed.item_traces ~kind:Unattributed.Hashtag ~node_of_name
      ~n_nodes:3 ~omni:2 [ t1; t2; t3 ]
  in
  let _, tr = List.hd traces in
  (* user0 first at 5 (rank 1), user1 at 7 (rank 2) *)
  Alcotest.(check (array int)) "first use" [| 1; 2; 0 |] tr.Evidence.times

let test_url_traces_from_corpus () =
  let c = small_corpus 105 in
  let aug, omni = Unattributed.augment_with_omnipotent c.Corpus.graph in
  let traces =
    Unattributed.item_traces ~kind:Unattributed.Url
      ~node_of_name:(Corpus.node_of_name c)
      ~n_nodes:(Digraph.n_nodes aug) ~omni c.Corpus.tweets
  in
  Alcotest.(check bool) "url traces exist" true (List.length traces > 5);
  List.iter
    (fun (_, tr) ->
      if not (Evidence.trace_is_consistent aug tr) then
        Alcotest.fail "inconsistent url trace")
    traces

let () =
  Alcotest.run "iflow_twitter"
    [
      ( "tweet",
        [
          Alcotest.test_case "mentions" `Quick test_mentions;
          Alcotest.test_case "hashtags" `Quick test_hashtags;
          Alcotest.test_case "urls" `Quick test_urls;
          Alcotest.test_case "retweet chain" `Quick test_retweet_chain;
          Alcotest.test_case "truncated chain" `Quick test_retweet_chain_truncated;
          Alcotest.test_case "roundtrip and truncation" `Quick
            test_retweet_roundtrip_and_truncation;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "generation" `Quick test_corpus_generation;
          Alcotest.test_case "retweets and items" `Quick
            test_corpus_contains_retweets_and_items;
        ] );
      ( "preprocess",
        [
          Alcotest.test_case "cascade reconstruction" `Quick test_cascades_reconstruction;
          Alcotest.test_case "recover missing original" `Quick
            test_cascades_recover_missing_original;
          Alcotest.test_case "users and infer graph" `Quick test_users_and_infer_graph;
          Alcotest.test_case "attributed consistency" `Quick test_to_attributed_consistency;
          Alcotest.test_case "pipeline matches ground-truth attribution" `Slow
            test_pipeline_matches_ground_truth_attribution;
        ] );
      ( "unattributed",
        [
          Alcotest.test_case "augment omnipotent" `Quick test_augment_with_omnipotent;
          Alcotest.test_case "item traces" `Quick test_item_traces;
          Alcotest.test_case "first use only" `Quick test_item_traces_first_use_only;
          Alcotest.test_case "url traces from corpus" `Quick test_url_traces_from_corpus;
        ] );
    ]
