type t = { size : int }

let create ?size () =
  let size =
    match size with
    | Some s ->
      if s < 1 then invalid_arg "Pool.create: size must be >= 1";
      s
    | None -> Domain.recommended_domain_count ()
  in
  { size }

let size t = t.size

let run t f tasks =
  let n = Array.length tasks in
  if n = 0 then [||]
  else begin
    let workers = min t.size n in
    let results = Array.make n None in
    if workers = 1 then
      Array.iteri (fun i task -> results.(i) <- Some (Ok (f task))) tasks
    else begin
      (* worker w owns indices with i mod workers = w: assignment is a
         pure function of the index, never of timing *)
      let run_block w () =
        let i = ref w in
        while !i < n do
          (results.(!i) <-
            (match f tasks.(!i) with
            | v -> Some (Ok v)
            | exception e -> Some (Error e)));
          i := !i + workers
        done
      in
      let domains =
        Array.init (workers - 1) (fun w -> Domain.spawn (run_block (w + 1)))
      in
      run_block 0 ();
      Array.iter Domain.join domains
    end;
    Array.map
      (function
        | Some (Ok v) -> v
        | Some (Error e) -> raise e
        | None -> assert false)
      results
  end
