(** Fig 1: accuracy of Metropolis-Hastings flow estimates on synthetic
    betaICMs. The paper: 2000 models, 50 nodes, 200 edges, 30 buckets;
    estimates predominantly inside the empirical 95% intervals. *)

val run : Scale.t -> Iflow_stats.Rng.t -> Iflow_bucket.Bucket.t
val report : Scale.t -> Iflow_stats.Rng.t -> Format.formatter -> Iflow_bucket.Bucket.t
