(** Plain-text serialisation of models and corpora, so the CLI can pass
    artifacts between subcommands.

    betaICM format ([.bicm]):
    {v
    bicm <n_nodes>
    <src> <dst> <alpha> <beta>      (one line per edge)
    v}

    ICM format ([.icm]): same with a single probability column.

    Tweets are tab-separated [id author time text] lines, one per tweet
    (tweet text never contains tabs or newlines).

    All loaders raise [Failure] with a line-numbered message on
    malformed input. *)

val save_beta_icm : string -> Iflow_core.Beta_icm.t -> unit
val load_beta_icm : string -> Iflow_core.Beta_icm.t

val save_icm : string -> Iflow_core.Icm.t -> unit
val load_icm : string -> Iflow_core.Icm.t

val save_tweets : string -> Iflow_twitter.Tweet.t list -> unit
val load_tweets : string -> Iflow_twitter.Tweet.t list

val save_names : string -> string array -> unit
(** One name per line; line number = node id. *)

val load_names : string -> string array
