test/test_properties.ml: Alcotest Array Beta_icm Cascade Exact Float Generator Icm Iflow_core Iflow_graph Iflow_mcmc Iflow_stats Iflow_twitter List Printf QCheck QCheck_alcotest Random String Summary
