type direction = Out | In | Both

let always_active _ = true

let reachable_from ?(active = always_active) g sources =
  let n = Digraph.n_nodes g in
  let marked = Array.make n false in
  let queue = Queue.create () in
  List.iter
    (fun v ->
      if v < 0 || v >= n then invalid_arg "Traverse.reachable_from: bad source";
      if not marked.(v) then begin
        marked.(v) <- true;
        Queue.add v queue
      end)
    sources;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    Digraph.iter_out g v (fun e ->
        if active e then begin
          let w = Digraph.edge_dst g e in
          if not marked.(w) then begin
            marked.(w) <- true;
            Queue.add w queue
          end
        end)
  done;
  marked

let reaches ?active g ~src ~dst = (reachable_from ?active g [ src ]).(dst)

let within_radius ?(direction = Both) g ~centre ~radius =
  let n = Digraph.n_nodes g in
  if centre < 0 || centre >= n then invalid_arg "Traverse.within_radius";
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(centre) <- 0;
  Queue.add centre queue;
  let visit v w =
    if dist.(w) < 0 && dist.(v) < radius then begin
      dist.(w) <- dist.(v) + 1;
      Queue.add w queue
    end
  in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    (match direction with
    | Out -> Digraph.iter_out g v (fun e -> visit v (Digraph.edge_dst g e))
    | In -> Digraph.iter_in g v (fun e -> visit v (Digraph.edge_src g e))
    | Both ->
      Digraph.iter_out g v (fun e -> visit v (Digraph.edge_dst g e));
      Digraph.iter_in g v (fun e -> visit v (Digraph.edge_src g e)))
  done;
  Array.map (fun d -> d >= 0) dist

let shortest_path ?(active = always_active) g ~src ~dst =
  let n = Digraph.n_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Traverse.shortest_path";
  if src = dst then Some []
  else begin
    (* parent_edge.(v) is the edge that first discovered v. *)
    let parent_edge = Array.make n (-1) in
    let visited = Array.make n false in
    visited.(src) <- true;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      Digraph.iter_out g v (fun e ->
          if active e then begin
            let w = Digraph.edge_dst g e in
            if not visited.(w) then begin
              visited.(w) <- true;
              parent_edge.(w) <- e;
              if w = dst then found := true else Queue.add w queue
            end
          end)
    done;
    if not !found then None
    else begin
      let rec unwind v acc =
        if v = src then acc
        else begin
          let e = parent_edge.(v) in
          unwind (Digraph.edge_src g e) (e :: acc)
        end
      in
      Some (unwind dst [])
    end
  end
