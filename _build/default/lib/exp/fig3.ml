open Iflow_core
module Digraph = Iflow_graph.Digraph
module Rng = Iflow_stats.Rng
module Beta = Iflow_stats.Dist.Beta
module Descriptive = Iflow_stats.Descriptive
module Nested = Iflow_mcmc.Nested

type pair_result = {
  source : int;
  sink : int;
  empirical : Beta.t;
  samples : float array;
  implied : Beta.t option;
}

(* Empirical flow evidence: over training cascades from [source], how
   often did [sink] end up active? *)
let empirical_beta (lab : Twitter_lab.t) ~source ~sink =
  let hits = ref 0 and total = ref 0 in
  List.iter
    (fun (o : Evidence.attributed_object) ->
      if o.Evidence.sources = [ source ] then begin
        incr total;
        if o.Evidence.active_nodes.(sink) then incr hits
      end)
    lab.Twitter_lab.train_objects;
  (!total, Beta.of_counts ~successes:!hits ~failures:(!total - !hits))

(* Pick pairs with plenty of evidence and a sink the source actually
   reaches sometimes (the paper's "tweets fairly frequently" sources and
   "nearby" sinks). *)
let candidate_pairs (lab : Twitter_lab.t) rng ~count =
  let sources = Twitter_lab.interesting_users lab ~count:10 in
  let pairs = ref [] in
  List.iter
    (fun source ->
      Digraph.iter_out lab.Twitter_lab.graph source (fun e ->
          let sink = Digraph.edge_dst lab.Twitter_lab.graph e in
          let total, _ = empirical_beta lab ~source ~sink in
          if total >= 10 then pairs := (source, sink) :: !pairs))
    sources;
  let arr = Array.of_list !pairs in
  Rng.shuffle rng arr;
  Array.to_list (Array.sub arr 0 (min count (Array.length arr)))

let run scale rng lab =
  let reps = Scale.pick scale ~quick:40 ~full:100 in
  let config = Scale.mcmc scale in
  let pairs = candidate_pairs lab rng ~count:2 in
  List.map
    (fun (source, sink) ->
      let _, empirical = empirical_beta lab ~source ~sink in
      let sub_model, node_of_sub, sub_focus =
        Twitter_lab.subgraph_around lab ~centre:source ~radius:2
      in
      let sub_sink = ref (-1) in
      Array.iteri (fun v' v -> if v = sink then sub_sink := v') node_of_sub;
      let samples =
        if !sub_sink < 0 then [||]
        else
          Nested.flow_samples rng sub_model config ~reps ~src:sub_focus
            ~dst:!sub_sink
      in
      let implied = if Array.length samples >= 2 then Nested.fit_beta samples else None in
      { source; sink; empirical; samples; implied })
    pairs

let report scale rng lab ppf =
  let results = run scale rng lab in
  Format.fprintf ppf
    "@[<v>== Fig 3: uncertainty of modelled vs empirical flow ==@,";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "-- pair %d ~> %d --@,empirical: %a (mean %.3f, std %.3f)@," r.source
        r.sink Beta.pp r.empirical (Beta.mean r.empirical)
        (Beta.std r.empirical);
      if Array.length r.samples > 0 then begin
        Format.fprintf ppf "nested-MH samples: mean %.3f, std %.3f@."
          (Descriptive.mean r.samples)
          (Descriptive.std r.samples);
        (match r.implied with
        | Some b -> Format.fprintf ppf "implied beta: %a@." Beta.pp b
        | None -> Format.fprintf ppf "implied beta: (degenerate)@.");
        let h =
          Descriptive.histogram ~lo:0.0 ~hi:1.0 ~bins:20 r.samples
        in
        Format.fprintf ppf "%a" Descriptive.pp_histogram h
      end
      else Format.fprintf ppf "(sink outside radius-2 subgraph)@.")
    results;
  Format.fprintf ppf "@]";
  results
