lib/stats/measures.mli: Format
