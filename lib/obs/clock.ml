external now_ns : unit -> int = "iflow_obs_clock_monotonic_ns" [@@noalloc]

let elapsed_ns t0 = now_ns () - t0
let seconds_of_ns ns = float_of_int ns /. 1e9
let now_s () = seconds_of_ns (now_ns ())

let time_per_call ?(min_interval = 0.05) ?(max_reps = 10_000_000) f =
  let rec run reps =
    let t0 = now_ns () in
    for _ = 1 to reps do
      f ()
    done;
    let dt = seconds_of_ns (now_ns () - t0) in
    if dt < min_interval && reps < max_reps then run (reps * 4)
    else dt /. float_of_int reps
  in
  run 1
