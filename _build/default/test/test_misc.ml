(* Tests for iflow_rwr, iflow_gtm and iflow_bucket. *)
open Iflow_core
module Digraph = Iflow_graph.Digraph
module Gen = Iflow_graph.Gen
module Rng = Iflow_stats.Rng
module Measures = Iflow_stats.Measures
module Rwr = Iflow_rwr.Rwr
module Sgtm = Iflow_gtm.Sgtm
module Bucket = Iflow_bucket.Bucket

let check_close ?(eps = 1e-9) msg expected actual =
  Alcotest.(check (float eps)) msg expected actual

(* ---------- RWR ---------- *)

let test_rwr_scores_normalised () =
  let rng = Rng.create 91 in
  let g = Gen.gnm rng ~nodes:20 ~edges:60 in
  let icm = Icm.create g (Array.init 60 (fun _ -> Rng.uniform rng)) in
  let r = Rwr.scores icm ~src:0 in
  check_close ~eps:1e-6 "sums to one" 1.0 (Array.fold_left ( +. ) 0.0 r);
  Array.iter
    (fun s -> if s < 0.0 then Alcotest.failf "negative score %g" s)
    r

let test_rwr_prefers_nearer_nodes () =
  (* chain 0 -> 1 -> 2: score must decay with distance *)
  let g = Gen.path 3 in
  let icm = Icm.const g 0.9 in
  let r = Rwr.scores icm ~src:0 in
  Alcotest.(check bool) "source highest" true (r.(0) > r.(1));
  Alcotest.(check bool) "decay" true (r.(1) > r.(2))

let test_rwr_restart_extremes () =
  let g = Gen.path 3 in
  let icm = Icm.const g 0.9 in
  let nearly_all_restart = Rwr.scores ~restart:0.99 icm ~src:0 in
  Alcotest.(check bool) "mass stays at source" true
    (nearly_all_restart.(0) > 0.95);
  let wanderer = Rwr.scores ~restart:0.01 icm ~src:0 in
  Alcotest.(check bool) "mass spreads" true (wanderer.(0) < 0.5)

let test_rwr_flow_estimate_range () =
  let rng = Rng.create 92 in
  let g = Gen.gnm rng ~nodes:15 ~edges:45 in
  let icm = Icm.create g (Array.init 45 (fun _ -> Rng.uniform rng)) in
  for dst = 1 to 14 do
    let p = Rwr.flow_estimate icm ~src:0 ~dst in
    if p < 0.0 || p > 1.0 then Alcotest.failf "estimate %g outside [0,1]" p
  done

let test_rwr_sink_node_teleports () =
  (* node 1 has no out-edges: walk must not lose mass *)
  let g = Digraph.of_edges ~nodes:2 [ (0, 1) ] in
  let icm = Icm.const g 1.0 in
  let r = Rwr.scores icm ~src:0 in
  check_close ~eps:1e-6 "mass conserved" 1.0 (r.(0) +. r.(1))

(* ---------- SGTM / ICM equivalence (Theorem 1) ---------- *)

let test_sgtm_influence () =
  let g = Digraph.of_edges ~nodes:3 [ (0, 2); (1, 2) ] in
  let icm = Icm.create g [| 0.5; 0.4 |] in
  check_close "no parents" 0.0
    (Sgtm.influence icm ~node:2 ~active:[| false; false; false |]);
  check_close "one parent" 0.5
    (Sgtm.influence icm ~node:2 ~active:[| true; false; false |]);
  check_close ~eps:1e-12 "both parents" 0.7
    (Sgtm.influence icm ~node:2 ~active:[| true; true; false |])

let test_sgtm_equiv_single_edge () =
  let g = Digraph.of_edges ~nodes:2 [ (0, 1) ] in
  let icm = Icm.create g [| 0.37 |] in
  let rng = Rng.create 93 in
  let freq = Sgtm.activation_frequency rng icm ~sources:[ 0 ] ~runs:30000 in
  check_close "source always" 1.0 freq.(0);
  check_close ~eps:0.015 "edge weight" 0.37 freq.(1)

let test_sgtm_equiv_matches_exact_flow () =
  (* Theorem 1: SGTM activation probability of any node equals the ICM
     flow probability, computable exactly by brute force. *)
  let rng = Rng.create 94 in
  for trial = 1 to 3 do
    let g = Gen.gnm rng ~nodes:6 ~edges:12 in
    let icm = Icm.create g (Array.init 12 (fun _ -> Rng.uniform rng)) in
    let freq = Sgtm.activation_frequency rng icm ~sources:[ 0 ] ~runs:20000 in
    for dst = 1 to 5 do
      check_close ~eps:0.02
        (Printf.sprintf "trial %d node %d" trial dst)
        (Exact.brute_force_flow icm ~src:0 ~dst)
        freq.(dst)
    done
  done

let prop_sgtm_icm_same_activation_distribution =
  QCheck.Test.make ~count:5 ~name:"SGTM and ICM cascades activate alike"
    QCheck.(int_range 0 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let g = Gen.gnm rng ~nodes:8 ~edges:16 in
      let icm = Icm.create g (Array.init 16 (fun _ -> Rng.uniform rng)) in
      let runs = 8000 in
      let sgtm = Sgtm.activation_frequency rng icm ~sources:[ 0 ] ~runs in
      let icm_counts = Array.make 8 0 in
      for _ = 1 to runs do
        let o = Cascade.run rng icm ~sources:[ 0 ] in
        Array.iteri
          (fun v a -> if a then icm_counts.(v) <- icm_counts.(v) + 1)
          o.Evidence.active_nodes
      done;
      let ok = ref true in
      Array.iteri
        (fun v c ->
          let f = float_of_int c /. float_of_int runs in
          if Float.abs (f -. sgtm.(v)) > 0.035 then ok := false)
        icm_counts;
      !ok)

(* ---------- Bucket ---------- *)

let p e o = { Measures.estimate = e; outcome = o }

let test_bucket_binning () =
  let preds = [ p 0.02 false; p 0.04 true; p 0.98 true; p 1.0 true ] in
  let b = Bucket.run ~bins:10 ~label:"t" preds in
  Alcotest.(check int) "total" 4 b.Bucket.total;
  Alcotest.(check int) "bin 0 volume" 2 b.Bucket.bins.(0).Bucket.count;
  Alcotest.(check int) "bin 0 positives" 1 b.Bucket.bins.(0).Bucket.positives;
  (* estimate = 1.0 lands in the last bin *)
  Alcotest.(check int) "bin 9 volume" 2 b.Bucket.bins.(9).Bucket.count

let test_bucket_calibrated_coverage () =
  (* perfectly calibrated predictions: outcome ~ Bernoulli(estimate) *)
  let rng = Rng.create 95 in
  let preds =
    List.init 30000 (fun _ ->
        let q = Rng.uniform rng in
        p q (Rng.bernoulli rng q))
  in
  let b = Bucket.run ~label:"calibrated" preds in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.3f >= 0.8" b.Bucket.coverage)
    true (b.Bucket.coverage >= 0.8)

let test_bucket_miscalibrated_detected () =
  (* estimates say 0.8 but the truth is 0.2: buckets must flag it *)
  let rng = Rng.create 96 in
  let preds =
    List.init 3000 (fun _ ->
        p (0.75 +. (0.1 *. Rng.uniform rng)) (Rng.bernoulli rng 0.2))
  in
  let b = Bucket.run ~label:"bad" preds in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.3f <= 0.5" b.Bucket.coverage)
    true (b.Bucket.coverage <= 0.5)

let test_bucket_empirical_beta_rule () =
  let preds = [ p 0.5 true; p 0.5 true; p 0.52 false ] in
  let b = Bucket.run ~bins:10 ~label:"beta" preds in
  let bin = b.Bucket.bins.(5) in
  (* alpha = 1 + 2, beta = 3 - 3 + 2 = 2 *)
  check_close "alpha" 3.0 bin.Bucket.empirical.Iflow_stats.Dist.Beta.alpha;
  check_close "beta" 2.0 bin.Bucket.empirical.Iflow_stats.Dist.Beta.beta

let test_bucket_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Bucket.run: no predictions")
    (fun () -> ignore (Bucket.run ~label:"x" []));
  Alcotest.check_raises "range"
    (Invalid_argument "Bucket.run: estimate outside [0,1]") (fun () ->
      ignore (Bucket.run ~label:"x" [ p 1.2 true ]))

let qcheck tests =
  List.map (QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 0 |])) tests

let () =
  Alcotest.run "iflow_misc"
    [
      ( "rwr",
        [
          Alcotest.test_case "scores normalised" `Quick test_rwr_scores_normalised;
          Alcotest.test_case "prefers nearer nodes" `Quick test_rwr_prefers_nearer_nodes;
          Alcotest.test_case "restart extremes" `Quick test_rwr_restart_extremes;
          Alcotest.test_case "flow estimate range" `Quick test_rwr_flow_estimate_range;
          Alcotest.test_case "sink teleports" `Quick test_rwr_sink_node_teleports;
        ] );
      ( "sgtm",
        [
          Alcotest.test_case "influence" `Quick test_sgtm_influence;
          Alcotest.test_case "single edge" `Slow test_sgtm_equiv_single_edge;
          Alcotest.test_case "matches exact flow" `Slow test_sgtm_equiv_matches_exact_flow;
        ]
        @ qcheck [ prop_sgtm_icm_same_activation_distribution ] );
      ( "bucket",
        [
          Alcotest.test_case "binning" `Quick test_bucket_binning;
          Alcotest.test_case "calibrated coverage" `Quick test_bucket_calibrated_coverage;
          Alcotest.test_case "miscalibration detected" `Quick test_bucket_miscalibrated_detected;
          Alcotest.test_case "empirical beta rule" `Quick test_bucket_empirical_beta_rule;
          Alcotest.test_case "validation" `Quick test_bucket_validation;
        ] );
    ]
