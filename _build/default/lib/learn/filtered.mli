(** The "filtered" baseline (paper Section V-C): apply the attributed
    Beta-counting rule to the unambiguous characteristics only (exactly
    one candidate parent) and discard all ambiguous evidence. *)

val train : Iflow_core.Summary.t -> Trainer.estimate
(** Mean and std of the per-parent Beta(1 + leaks, 1 + count - leaks)
    posterior. Parents that only ever appear in ambiguous
    characteristics fall back on the uniform prior (mean 0.5). *)

val beta_for : Iflow_core.Summary.t -> parent:int -> Iflow_stats.Dist.Beta.t
(** The posterior Beta for one parent under the filtered rule. *)
