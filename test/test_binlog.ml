(* Tests for the binary event log (lib/stream/binlog) and the
   domain-sharded ingest path (lib/stream/sharded).

   The acceptance criteria pinned here:
   - cross-codec replay: the same event sequence via JSONL and via
     binary segments yields identical Beta_icm digests at every
     published version — at 1, 2, and 4 shards, forgetting on, semantic
     quarantines included;
   - corruption never crashes a read: exhaustive per-byte truncation
     and per-byte bit flips of a segment either fail loudly at the
     header (Corrupt) or quarantine damaged records while every
     successfully decoded event is one of the originals, in order;
   - resume (skip) and multi-segment rolling preserve the stream. *)

module Rng = Iflow_stats.Rng
module Beta = Iflow_stats.Dist.Beta
module Gen = Iflow_graph.Gen
module Digraph = Iflow_graph.Digraph
module Icm = Iflow_core.Icm
module Beta_icm = Iflow_core.Beta_icm
module Cascade = Iflow_core.Cascade
module Event = Iflow_stream.Event
module Online = Iflow_stream.Online
module Snapshot = Iflow_stream.Snapshot
module Runner = Iflow_stream.Runner
module Binlog = Iflow_stream.Binlog
module Sharded = Iflow_stream.Sharded

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let with_temp_log f =
  let path = Filename.temp_file "iflow_binlog_test" ".ibl" in
  let cleanup () =
    let rec rm k =
      let p = Binlog.segment_path path k in
      if Sys.file_exists p then begin
        Sys.remove p;
        rm (k + 1)
      end
    in
    rm 0
  in
  Fun.protect ~finally:cleanup (fun () -> f path)

let sample_events =
  [
    Event.Attributed
      { sources = [ 0; 2 ]; nodes = [ 0; 2; 5 ]; edges = [ (0, 5); (2, 5) ] };
    Event.Trace { sources = [ 1 ]; times = [ (3, 1); (4, 2) ] };
    Event.Add_nodes { count = 3 };
    Event.Add_edges { edges = [ (1, 7); (2, 7) ]; prior = Beta.v 2.5 0.5 };
    Event.Remove_edges { edges = [ (0, 5) ] };
    Event.Attributed { sources = []; nodes = []; edges = [] };
    Event.Trace { sources = [ 0 ]; times = [] };
  ]

let write_log ?segment_bytes path events =
  let w = Binlog.Writer.create ?segment_bytes path in
  List.iter (Binlog.Writer.append w) events;
  Binlog.Writer.close w;
  w

let read_all path =
  let r = Binlog.Reader.open_ path in
  let rec go acc =
    match Binlog.Reader.next r with
    | None -> List.rev acc
    | Some item -> go (item :: acc)
  in
  go []

let oks items =
  List.filter_map (function Ok ev -> Some ev | Error _ -> None) items

let errs items =
  List.filter_map (function Ok _ -> None | Error e -> Some e) items

(* ---------- round-trip ---------- *)

let test_roundtrip () =
  with_temp_log (fun path ->
      let w = write_log path sample_events in
      check_int "writer events" (List.length sample_events)
        (Binlog.Writer.events w);
      check_int "one segment" 1 (Binlog.Writer.segments w);
      check_bool "sniffs as binlog" true (Binlog.is_binlog path);
      let items = read_all path in
      check_int "no errors" 0 (List.length (errs items));
      check_bool "events round-trip" true (oks items = sample_events))

let test_writer_rejects_negative () =
  with_temp_log (fun path ->
      let w = Binlog.Writer.create path in
      Fun.protect
        ~finally:(fun () -> Binlog.Writer.close w)
        (fun () ->
          check_bool "negative id" true
            (match
               Binlog.Writer.append w
                 (Event.Attributed
                    { sources = [ -1 ]; nodes = []; edges = [] })
             with
            | exception Invalid_argument _ -> true
            | () -> false);
          check_int "nothing written" 0 (Binlog.Writer.events w)))

let test_multi_segment_and_skip () =
  with_temp_log (fun path ->
      let events =
        List.init 50 (fun i ->
            Event.Attributed
              { sources = [ i ]; nodes = [ i; i + 1 ]; edges = [ (i, i + 1) ] })
      in
      let w = write_log ~segment_bytes:256 path events in
      check_bool "rolled segments" true (Binlog.Writer.segments w > 1);
      check_bool "segment 1 exists" true
        (Sys.file_exists (Binlog.segment_path path 1));
      let items = read_all path in
      check_bool "all events across segments" true (oks items = events);
      (* resume: skip a prefix that lands mid-segment *)
      let r = Binlog.Reader.open_ path in
      check_int "skip 17" 17 (Binlog.Reader.skip r 17);
      check_int "events_seen" 17 (Binlog.Reader.events_seen r);
      let rec drain acc =
        match Binlog.Reader.next r with
        | None -> List.rev acc
        | Some (Ok ev) -> drain (ev :: acc)
        | Some (Error e) -> Alcotest.failf "error: %s" (Binlog.error_message e)
      in
      let rest = drain [] in
      check_bool "suffix after skip" true
        (rest = List.filteri (fun i _ -> i >= 17) events);
      (* skipping past the end reports how far it got *)
      let r2 = Binlog.Reader.open_ path in
      check_int "skip past end" 50 (Binlog.Reader.skip r2 1000))

let test_header_mismatch_is_corrupt () =
  with_temp_log (fun path ->
      ignore (write_log path sample_events);
      (* a second log's segment 0 renamed to look like segment 1: the
         chain index check must refuse it *)
      with_temp_log (fun other ->
          ignore (write_log other sample_events);
          let bytes = In_channel.with_open_bin other In_channel.input_all in
          Out_channel.with_open_bin
            (Binlog.segment_path path 1)
            (fun oc -> Out_channel.output_string oc bytes);
          check_bool "chain index mismatch" true
            (match read_all path with
            | exception Binlog.Corrupt _ -> true
            | _ -> false)))

(* ---------- corruption: exhaustive truncation and bit flips ---------- *)

let segment_bytes path =
  In_channel.with_open_bin path In_channel.input_all

let write_segment path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let test_exhaustive_truncation () =
  with_temp_log (fun path ->
      ignore (write_log path sample_events);
      let full = segment_bytes path in
      let len = String.length full in
      for cut = 0 to len - 1 do
        write_segment path (String.sub full 0 cut);
        if cut < Binlog.header_size then
          check_bool
            (Printf.sprintf "cut %d: corrupt header" cut)
            true
            (match read_all path with
            | exception Binlog.Corrupt _ -> true
            | _ -> false)
        else begin
          let items = read_all path in
          let decoded = oks items in
          let errors = errs items in
          (* whatever survives is an exact prefix of the originals *)
          let rec is_prefix xs ys =
            match (xs, ys) with
            | [], _ -> true
            | x :: xs, y :: ys -> x = y && is_prefix xs ys
            | _ :: _, [] -> false
          in
          check_bool
            (Printf.sprintf "cut %d: prefix survives" cut)
            true
            (is_prefix decoded sample_events);
          (* a cut at a frame boundary is clean; anywhere else exactly
             one truncation error closes the read *)
          check_bool
            (Printf.sprintf "cut %d: at most one error" cut)
            true
            (List.length errors <= 1);
          List.iter
            (fun e ->
              check_bool
                (Printf.sprintf "cut %d: truncated/bad_varint" cut)
                true
                (match e.Binlog.reason with
                | Binlog.Truncated | Binlog.Bad_varint -> true
                | Binlog.Bad_crc | Binlog.Unknown_tag -> false))
            errors;
          if List.length errors = 0 then
            check_bool
              (Printf.sprintf "cut %d: clean cut decodes a full prefix" cut)
              true
              (cut = Binlog.header_size || decoded <> [])
        end
      done;
      write_segment path full)

let test_exhaustive_bit_flips () =
  with_temp_log (fun path ->
      ignore (write_log path sample_events);
      let full = segment_bytes path in
      let len = String.length full in
      for pos = 0 to len - 1 do
        let b = Bytes.of_string full in
        Bytes.set b pos
          (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl (pos mod 8))));
        write_segment path (Bytes.to_string b);
        if pos < Binlog.header_size then
          check_bool
            (Printf.sprintf "flip %d: corrupt header" pos)
            true
            (match read_all path with
            | exception Binlog.Corrupt _ -> true
            | _ -> false)
        else begin
          let items = read_all path in
          (* at least one record is lost, and nothing fabricated: every
             decoded event is an original, and they stay in order *)
          check_bool
            (Printf.sprintf "flip %d: at least one error" pos)
            true
            (List.length (errs items) >= 1);
          let rec is_subseq xs ys =
            match (xs, ys) with
            | [], _ -> true
            | _ :: _, [] -> false
            | x :: xs', y :: ys' ->
              if x = y then is_subseq xs' ys' else is_subseq xs ys'
          in
          check_bool
            (Printf.sprintf "flip %d: subsequence survives" pos)
            true
            (is_subseq (oks items) sample_events)
        end
      done;
      write_segment path full)

let test_payload_crc_resync () =
  (* a bad payload CRC quarantines exactly one record: the reader
     resyncs at the next frame because the length was intact *)
  with_temp_log (fun path ->
      ignore (write_log path sample_events);
      let full = segment_bytes path in
      (* flip one byte inside the *first* payload (header + length
         varint + tag is the first payload byte) *)
      let pos = Binlog.header_size + 2 in
      let b = Bytes.of_string full in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
      write_segment path (Bytes.to_string b);
      let items = read_all path in
      let errors = errs items in
      check_int "one quarantined record" 1 (List.length errors);
      List.iter
        (fun e ->
          check_bool "reason is bad_crc" true (e.Binlog.reason = Binlog.Bad_crc);
          check_string "segment named" path e.Binlog.segment;
          check_int "offset of frame start" Binlog.header_size
            e.Binlog.offset)
        errors;
      check_bool "rest of the log survives" true
        (oks items = List.tl sample_events))

(* ---------- cross-codec replay ---------- *)

(* a substrate whose event stream exercises evidence, semantic
   quarantines, and graph changes *)
let substrate seed ~events =
  let rng = Rng.create seed in
  let g = Gen.gnm rng ~nodes:30 ~edges:120 in
  let m = Digraph.n_edges g in
  let icm =
    Icm.create g (Array.init m (fun _ -> 0.1 +. (0.6 *. Rng.uniform rng)))
  in
  let evidence =
    List.init events (fun _ ->
        Event.of_attributed g
          (Cascade.run rng icm ~sources:[ Rng.int rng (Digraph.n_nodes g) ]))
  in
  (* interleave: a growth burst, evidence on the new edge, semantic
     rejects (unknown edge, inconsistent object), a removal *)
  let enriched =
    Event.Add_nodes { count = 1 }
    :: Event.Add_edges { edges = [ (0, 30) ]; prior = Beta.v 1.0 1.0 }
    :: Event.Attributed { sources = [ 0 ]; nodes = [ 0; 30 ]; edges = [ (0, 30) ] }
    :: Event.Attributed { sources = [ 0 ]; nodes = [ 0 ]; edges = [ (29, 28) ] }
    :: Event.Attributed { sources = []; nodes = [ 5 ]; edges = [] }
    :: Event.Trace { sources = [ 0 ]; times = [ (7, 3) ] }
    :: evidence
    @ [ Event.Remove_edges { edges = [ (0, 30) ] } ]
  in
  (g, evidence, enriched)

let run_jsonl ~batch ~forget model events =
  let online = Online.create ~forget model in
  let snapshot = Snapshot.create model in
  let digests = ref [] in
  let quarantines = ref [] in
  let report =
    Runner.run
      ~on_publish:(fun v -> digests := v.Snapshot.digest :: !digests)
      ~on_quarantine:(fun ~line ~reason ->
        quarantines := (line, reason) :: !quarantines)
      { Runner.batch; checkpoint_every = None }
      online snapshot
      (Runner.lines_of_list (List.map Event.to_line events))
  in
  (report, List.rev !digests, List.rev !quarantines)

let run_bin ~batch ~forget ~shards model events =
  with_temp_log (fun path ->
      ignore (write_log path events);
      let sharded = Sharded.create ~shards ~forget model in
      Fun.protect
        ~finally:(fun () -> Sharded.close sharded)
        (fun () ->
          let snapshot = Snapshot.create model in
          let digests = ref [] in
          let quarantines = ref [] in
          let report =
            Runner.run_binlog
              ~on_publish:(fun v -> digests := v.Snapshot.digest :: !digests)
              ~on_quarantine:(fun ~line ~reason ->
                quarantines := (line, reason) :: !quarantines)
              { Runner.batch; checkpoint_every = None }
              sharded snapshot
              (Binlog.Reader.open_ path)
          in
          (report, List.rev !digests, List.rev !quarantines)))

let check_stats_equal (a : Online.stats) (b : Online.stats) =
  check_int "applied" a.Online.applied b.Online.applied;
  check_int "observations" a.Online.observations b.Online.observations;
  check_int "graph_changes" a.Online.graph_changes b.Online.graph_changes;
  check_int "inconsistent" a.Online.inconsistent b.Online.inconsistent;
  check_int "unknown_refs" a.Online.unknown_refs b.Online.unknown_refs

let test_cross_codec_replay () =
  let g, _, events = substrate 20120402 ~events:120 in
  let model = Beta_icm.uninformed g in
  (* forgetting on: every publish decays, so digests only match when
     the two paths publish over exactly the same event prefixes *)
  List.iter
    (fun (batch, forget) ->
      let rj, dj, qj = run_jsonl ~batch ~forget model events in
      List.iter
        (fun shards ->
          let rb, db, qb = run_bin ~batch ~forget ~shards model events in
          let label =
            Printf.sprintf "batch %d forget %g shards %d" batch forget shards
          in
          check_bool (label ^ ": digests at every publish") true (dj = db);
          check_bool (label ^ ": final digest") true
            (rj.Runner.final.Snapshot.digest = rb.Runner.final.Snapshot.digest);
          check_int (label ^ ": lines") rj.Runner.lines rb.Runner.lines;
          check_bool
            (label ^ ": quarantine lines and reasons")
            true (qj = qb);
          check_stats_equal rj.Runner.stats rb.Runner.stats)
        [ 1; 2; 4 ])
    [ (32, 0.0); (17, 0.05) ]

let test_sharded_matches_online_after_corruption () =
  (* binary-only damage: the record quarantines (counted as a parse
     error under the rate gate) and the rest of the stream still lands
     on the same posterior as the JSONL path minus that one event *)
  let g, events, _ = substrate 7 ~events:40 in
  let model = Beta_icm.uninformed g in
  with_temp_log (fun path ->
      ignore (write_log path events);
      let full = segment_bytes path in
      let pos = Binlog.header_size + 2 in
      let b = Bytes.of_string full in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x10));
      write_segment path (Bytes.to_string b);
      let sharded = Sharded.create ~shards:2 model in
      Fun.protect
        ~finally:(fun () -> Sharded.close sharded)
        (fun () ->
          let reasons = ref [] in
          let report =
            Runner.run_binlog
              ~on_quarantine:(fun ~line ~reason ->
                reasons := (line, reason) :: !reasons)
              { Runner.batch = 16; checkpoint_every = None }
              sharded (Snapshot.create model)
              (Binlog.Reader.open_ path)
          in
          check_int "one parse error" 1 report.Runner.stats.Online.parse_errors;
          (match !reasons with
          | [ (line, reason) ] ->
            check_int "quarantine line is the damaged record" 1 line;
            let prefix =
              Printf.sprintf "%s@%d: bad_crc" path Binlog.header_size
            in
            check_bool "reason names segment, offset, bad_crc" true
              (String.length reason >= String.length prefix
              && String.sub reason 0 (String.length prefix) = prefix)
          | other ->
            Alcotest.failf "expected one quarantine, got %d"
              (List.length other));
          (* reference: the same stream without its first event *)
          let rj, _, _ =
            run_jsonl ~batch:16 ~forget:0.0 model (List.tl events)
          in
          check_string "posterior matches JSONL minus the damaged event"
            rj.Runner.final.Snapshot.digest
            report.Runner.final.Snapshot.digest))

let test_checkpoint_resume_binary () =
  (* crash after a prefix, recover, resume from the binary log with
     skip: the final digest matches an uninterrupted sequential run *)
  let g, _, events = substrate 11 ~events:100 in
  let model = Beta_icm.uninformed g in
  let expected =
    let rj, _, _ = run_jsonl ~batch:32 ~forget:0.0 model events in
    rj.Runner.final.Snapshot.digest
  in
  with_temp_log (fun log ->
      ignore (write_log log events);
      let ckpt = Filename.temp_file "iflow_binlog_test" ".ckpt" in
      Fun.protect
        ~finally:(fun () -> if Sys.file_exists ckpt then Sys.remove ckpt)
        (fun () ->
          let total = List.length events in
          let prefix = 57 in
          let sharded = Sharded.create ~shards:2 model in
          let reader = Binlog.Reader.open_ log in
          (* phase 1: ingest a prefix by draining batches by hand, then
             checkpoint — simulating a crash mid-log *)
          let snapshot = Snapshot.create ~checkpoint_path:ckpt model in
          let batch = Binlog.Batch.create () in
          let seen = ref 0 in
          while !seen < prefix do
            let max = min 16 (prefix - !seen) in
            ignore (Binlog.Reader.read_batch reader batch ~max);
            ignore
              (Sharded.apply_batch sharded batch ~first_line:(!seen + 1));
            seen := !seen + Binlog.Batch.length batch
          done;
          check_int "prefix consumed" prefix !seen;
          ignore
            (Snapshot.publish snapshot (Sharded.model sharded) ~offset:!seen);
          Snapshot.checkpoint snapshot;
          Sharded.close sharded;
          (* phase 2: recover and resume at 4 shards *)
          let model2, offset, _version = Snapshot.recover ckpt in
          check_int "recovered offset" prefix offset;
          let sharded2 = Sharded.create ~shards:4 model2 in
          Fun.protect
            ~finally:(fun () -> Sharded.close sharded2)
            (fun () ->
              let report =
                Runner.run_binlog ~skip:offset
                  { Runner.batch = 32; checkpoint_every = None }
                  sharded2
                  (Snapshot.create model2)
                  (Binlog.Reader.open_ log)
              in
              check_int "rest consumed" total report.Runner.lines;
              check_string "resumed digest matches uninterrupted replay"
                expected report.Runner.final.Snapshot.digest)))

let test_unknown_tag_quarantines () =
  (* a record with an unrecognised tag byte but a valid CRC: future
     event kinds must quarantine, not kill the reader *)
  with_temp_log (fun path ->
      ignore (write_log path [ List.hd sample_events ]);
      let full = segment_bytes path in
      let b = Buffer.create 64 in
      Buffer.add_string b full;
      (* hand-build a frame: payload = [tag 9], CRC over it *)
      let payload = "\009" in
      Buffer.add_char b '\001';
      Buffer.add_string b payload;
      let crc = Iflow_fault.Crc32.string payload in
      Buffer.add_char b (Char.chr (crc land 0xff));
      Buffer.add_char b (Char.chr ((crc lsr 8) land 0xff));
      Buffer.add_char b (Char.chr ((crc lsr 16) land 0xff));
      Buffer.add_char b (Char.chr ((crc lsr 24) land 0xff));
      write_segment path (Buffer.contents b);
      let items = read_all path in
      check_int "two records" 2 (List.length items);
      match items with
      | [ Ok _; Error e ] ->
        check_bool "unknown tag" true (e.Binlog.reason = Binlog.Unknown_tag)
      | _ -> Alcotest.fail "expected [Ok; Error unknown_tag]")

let () =
  Alcotest.run "binlog"
    [
      ( "codec",
        [
          Alcotest.test_case "round-trip" `Quick test_roundtrip;
          Alcotest.test_case "writer rejects negatives" `Quick
            test_writer_rejects_negative;
          Alcotest.test_case "multi-segment + skip" `Quick
            test_multi_segment_and_skip;
          Alcotest.test_case "chain index mismatch" `Quick
            test_header_mismatch_is_corrupt;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "exhaustive truncation" `Quick
            test_exhaustive_truncation;
          Alcotest.test_case "exhaustive bit flips" `Quick
            test_exhaustive_bit_flips;
          Alcotest.test_case "payload CRC resync" `Quick
            test_payload_crc_resync;
          Alcotest.test_case "unknown tag quarantines" `Quick
            test_unknown_tag_quarantines;
        ] );
      ( "cross-codec",
        [
          Alcotest.test_case "replay digests identical" `Quick
            test_cross_codec_replay;
          Alcotest.test_case "sharded matches online after corruption" `Quick
            test_sharded_matches_online_after_corruption;
          Alcotest.test_case "checkpoint resume from binary" `Quick
            test_checkpoint_resume_binary;
        ] );
    ]
