(** Point-probability Independent Cascade Models.

    An ICM is a directed graph together with an activation probability
    per edge: when the edge's source node holds an information object,
    the object crosses the edge with that probability, independently of
    everything else (paper Section II). *)

type t

val create : Iflow_graph.Digraph.t -> float array -> t
(** [create g probs] pairs graph [g] with [probs.(e)] as the activation
    probability of edge [e]. Raises [Invalid_argument] when the array
    length differs from the edge count or any probability is outside
    [[0, 1]]. *)

val const : Iflow_graph.Digraph.t -> float -> t
(** Every edge gets the same activation probability. *)

val graph : t -> Iflow_graph.Digraph.t
val prob : t -> int -> float
(** Activation probability of an edge id. *)

val probs : t -> float array
(** A copy of the probability vector. *)

val n_nodes : t -> int
val n_edges : t -> int

val digest : t -> string
(** FNV-1a fingerprint of the topology and edge probabilities — the
    model identity used by the engine's cache keys and per-query seeds
    ({!Iflow_engine.Engine.icm_digest} delegates here). *)

val pp : Format.formatter -> t -> unit
