let prom_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let escape_label_value buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s

let escape_help buf s =
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s

let render_labels buf labels =
  if labels <> [] then begin
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        escape_label_value buf v;
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}'
  end

let to_string registry =
  let samples = Metrics.snapshot registry in
  let buf = Buffer.create 4096 in
  let headed = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let name = s.Metrics.sample_name in
      let kind =
        match s.Metrics.sample_value with
        | Metrics.Counter_v _ -> "counter"
        | Metrics.Gauge_v _ -> "gauge"
        | Metrics.Histogram_v _ -> "histogram"
      in
      if not (Hashtbl.mem headed name) then begin
        Hashtbl.add headed name ();
        if s.Metrics.sample_help <> "" then begin
          Buffer.add_string buf (Printf.sprintf "# HELP %s " name);
          escape_help buf s.Metrics.sample_help;
          Buffer.add_char buf '\n'
        end;
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
      end;
      match s.Metrics.sample_value with
      | Metrics.Counter_v v ->
        Buffer.add_string buf name;
        render_labels buf s.Metrics.sample_labels;
        Buffer.add_string buf (Printf.sprintf " %d\n" v)
      | Metrics.Gauge_v v ->
        Buffer.add_string buf name;
        render_labels buf s.Metrics.sample_labels;
        Buffer.add_string buf (Printf.sprintf " %s\n" (prom_float v))
      | Metrics.Histogram_v { scale; sum; buckets } ->
        let count =
          if Array.length buckets = 0 then 0
          else snd buckets.(Array.length buckets - 1)
        in
        Array.iter
          (fun (le, cum) ->
            Buffer.add_string buf (name ^ "_bucket");
            render_labels buf
              (s.Metrics.sample_labels @ [ ("le", prom_float (le *. scale)) ]);
            Buffer.add_string buf (Printf.sprintf " %d\n" cum))
          buckets;
        Buffer.add_string buf (name ^ "_sum");
        render_labels buf s.Metrics.sample_labels;
        Buffer.add_string buf
          (Printf.sprintf " %s\n" (prom_float (float_of_int sum *. scale)));
        Buffer.add_string buf (name ^ "_count");
        render_labels buf s.Metrics.sample_labels;
        Buffer.add_string buf (Printf.sprintf " %d\n" count))
    samples;
  Buffer.contents buf

let write_file registry path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string registry))

(* ----- exposition validator (CI gate) ----- *)

exception Bad of string

let valid_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

(* Parse one sample line, returning a canonical [name{sorted labels}]
   key for duplicate detection. *)
let parse_sample line =
  let n = String.length line in
  let i = ref 0 in
  let start = !i in
  while
    !i < n
    &&
    match line.[!i] with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  do
    incr i
  done;
  if !i = start then raise (Bad "missing metric name");
  let name = String.sub line start (!i - start) in
  if not (valid_name name) then raise (Bad ("bad metric name " ^ name));
  let labels = ref [] in
  if !i < n && line.[!i] = '{' then begin
    incr i;
    let parsing = ref true in
    while !parsing do
      if !i >= n then raise (Bad "unterminated label set");
      if line.[!i] = '}' then begin
        incr i;
        parsing := false
      end
      else begin
        let ls = !i in
        while
          !i < n
          &&
          match line.[!i] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
          | _ -> false
        do
          incr i
        done;
        if !i = ls then raise (Bad "bad label name");
        let lname = String.sub line ls (!i - ls) in
        if List.mem_assoc lname !labels then
          raise (Bad ("duplicate label " ^ lname));
        if !i >= n || line.[!i] <> '=' then raise (Bad "expected '=' in label");
        incr i;
        if !i >= n || line.[!i] <> '"' then
          raise (Bad "expected '\"' opening label value");
        incr i;
        let buf = Buffer.create 16 in
        let in_str = ref true in
        while !in_str do
          if !i >= n then raise (Bad "unterminated label value");
          (match line.[!i] with
          | '"' -> in_str := false
          | '\\' ->
            incr i;
            if !i >= n then raise (Bad "dangling escape in label value");
            (match line.[!i] with
            | '\\' -> Buffer.add_char buf '\\'
            | '"' -> Buffer.add_char buf '"'
            | 'n' -> Buffer.add_char buf '\n'
            | c -> raise (Bad (Printf.sprintf "bad escape \\%c" c)))
          | c -> Buffer.add_char buf c);
          incr i
        done;
        labels := (lname, Buffer.contents buf) :: !labels;
        if !i < n && line.[!i] = ',' then incr i
        else if !i < n && line.[!i] = '}' then ()
        else if !i >= n then raise (Bad "unterminated label set")
        else raise (Bad "expected ',' or '}' in label set")
      end
    done
  end;
  if !i >= n || line.[!i] <> ' ' then raise (Bad "expected space before value");
  while !i < n && line.[!i] = ' ' do
    incr i
  done;
  let vs = !i in
  while !i < n && line.[!i] <> ' ' do
    incr i
  done;
  if !i = vs then raise (Bad "missing value");
  let value = String.sub line vs (!i - vs) in
  (match value with
  | "NaN" | "+Inf" | "-Inf" | "Inf" -> ()
  | v -> (
    match float_of_string_opt v with
    | Some _ -> ()
    | None -> raise (Bad ("unparseable value " ^ v))));
  while !i < n && line.[!i] = ' ' do
    incr i
  done;
  if !i < n then begin
    let ts = !i in
    while !i < n && line.[!i] <> ' ' do
      incr i
    done;
    let t = String.sub line ts (!i - ts) in
    (match int_of_string_opt t with
    | Some _ -> ()
    | None -> raise (Bad ("unparseable timestamp " ^ t)));
    while !i < n && line.[!i] = ' ' do
      incr i
    done;
    if !i < n then raise (Bad "trailing garbage after timestamp")
  end;
  name ^ "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> k ^ "=" ^ String.escaped v)
         (List.sort compare !labels))
  ^ "}"

let check text =
  let seen = Hashtbl.create 64 in
  let types = Hashtbl.create 16 in
  let fail lineno msg =
    Result.Error (Printf.sprintf "line %d: %s" lineno msg)
  in
  let rec go lineno = function
    | [] -> Result.Ok ()
    | line :: rest -> (
      let lineno = lineno + 1 in
      if line = "" then go lineno rest
      else if line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | [ "#"; "TYPE"; name; ty ] ->
          if not (valid_name name) then
            fail lineno ("bad metric name in TYPE: " ^ name)
          else if
            not
              (List.mem ty [ "counter"; "gauge"; "histogram"; "summary";
                             "untyped" ])
          then fail lineno ("unknown metric type " ^ ty)
          else if Hashtbl.mem types name then
            fail lineno ("duplicate TYPE declaration for " ^ name)
          else begin
            Hashtbl.add types name ty;
            go lineno rest
          end
        | "#" :: "TYPE" :: _ -> fail lineno "malformed TYPE line"
        | _ -> go lineno rest (* HELP or free-form comment *)
      end
      else
        match parse_sample line with
        | exception Bad msg -> fail lineno msg
        | key ->
          if Hashtbl.mem seen key then fail lineno ("duplicate sample " ^ key)
          else begin
            Hashtbl.add seen key ();
            go lineno rest
          end)
  in
  go 0 (String.split_on_char '\n' text)
