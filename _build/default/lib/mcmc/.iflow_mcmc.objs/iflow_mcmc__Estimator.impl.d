lib/mcmc/estimator.ml: Array Chain Conditions Iflow_core List
