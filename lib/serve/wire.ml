module Engine = Iflow_engine.Engine
module Query = Iflow_engine.Query
module Jsonl = Iflow_engine.Jsonl

type error_code =
  | Bad_request
  | Bad_query
  | Over_capacity
  | Quota_exceeded
  | Chains_failed
  | Shutting_down
  | Deadline_exceeded
  | Deadline_unmeetable

let code_string = function
  | Bad_request -> "bad_request"
  | Bad_query -> "bad_query"
  | Over_capacity -> "over_capacity"
  | Quota_exceeded -> "quota_exceeded"
  | Chains_failed -> "chains_failed"
  | Shutting_down -> "shutting_down"
  | Deadline_exceeded -> "deadline_exceeded"
  | Deadline_unmeetable -> "deadline_unmeetable"

let http_status = function
  | Bad_request -> 400
  | Bad_query -> 422
  | Over_capacity -> 429
  | Quota_exceeded -> 429
  | Chains_failed -> 500
  | Shutting_down -> 503
  | Deadline_exceeded -> 504
  | Deadline_unmeetable -> 503

let escape s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

(* %.17g round-trips every finite double through float_of_string, so a
   client parsing the line recovers the engine's floats bit for bit.
   JSON has no nan/inf literals: non-finite diagnostics (rhat on
   zero-variance samples, for one) serialize as null and parse back as
   nan. *)
let f17 x =
  if not (Float.is_finite x) then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else Printf.sprintf "%.17g" x

let result_line ?id ?request_id ?version ?(degraded = false) (r : Engine.result)
    =
  let b = Buffer.create 256 in
  Buffer.add_char b '{';
  (match id with
  | Some id -> Buffer.add_string b (Printf.sprintf "\"id\":%s," (escape id))
  | None -> ());
  (match request_id with
  | Some rid ->
    Buffer.add_string b (Printf.sprintf "\"request_id\":%s," (escape rid))
  | None -> ());
  Buffer.add_string b (Printf.sprintf "\"estimate\":%s," (f17 r.Engine.estimate));
  Buffer.add_string b (Printf.sprintf "\"rhat\":%s," (f17 r.Engine.rhat));
  Buffer.add_string b (Printf.sprintf "\"ess\":%s," (f17 r.Engine.ess));
  Buffer.add_string b (Printf.sprintf "\"mcse\":%s," (f17 r.Engine.mcse));
  Buffer.add_string b (Printf.sprintf "\"samples\":%d," r.Engine.total_samples);
  Buffer.add_string b (Printf.sprintf "\"chains\":%d," r.Engine.chains_used);
  Buffer.add_string b
    (Printf.sprintf "\"cached\":%b," r.Engine.cached);
  Buffer.add_string b
    (Printf.sprintf "\"partial\":%b," r.Engine.partial);
  (match r.Engine.plan with
  | Engine.Plan_exact { cone_nodes; validated } ->
    Buffer.add_string b "\"plan\":\"exact\",";
    Buffer.add_string b (Printf.sprintf "\"plan_cone\":%d," cone_nodes);
    Buffer.add_string b (Printf.sprintf "\"plan_validated\":%b," validated)
  | Engine.Plan_mh { fallback } ->
    Buffer.add_string b "\"plan\":\"mh\",";
    (match fallback with
    | Some reason ->
      Buffer.add_string b
        (Printf.sprintf "\"plan_fallback\":%s," (escape reason))
    | None -> ()));
  Buffer.add_string b (Printf.sprintf "\"degraded\":%b," degraded);
  (match version with
  | Some v -> Buffer.add_string b (Printf.sprintf "\"version\":%d," v)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "\"digest\":%s}" (escape r.Engine.model_digest));
  Buffer.contents b

let error_line ?id ?request_id ?retry_after_ms code msg =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  (match id with
  | Some id -> Buffer.add_string b (Printf.sprintf "\"id\":%s," (escape id))
  | None -> ());
  (match request_id with
  | Some rid ->
    Buffer.add_string b (Printf.sprintf "\"request_id\":%s," (escape rid))
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "\"error\":%s," (escape (code_string code)));
  (match retry_after_ms with
  | Some ms -> Buffer.add_string b (Printf.sprintf "\"retry_after_ms\":%d," ms)
  | None -> ());
  Buffer.add_string b (Printf.sprintf "\"message\":%s}" (escape msg));
  Buffer.contents b

let parsed_result json =
  let num name =
    match Jsonl.member name json with
    | Some (Jsonl.Num f) -> Ok f
    | Some Jsonl.Null -> Ok Float.nan
    | _ -> Error (Printf.sprintf "missing numeric field %S" name)
  in
  let bool_f name =
    match Jsonl.member name json with
    | Some (Jsonl.Bool v) -> Ok v
    | _ -> Error (Printf.sprintf "missing boolean field %S" name)
  in
  let ( let* ) = Result.bind in
  match Jsonl.member "error" json with
  | Some (Jsonl.Str e) -> Error (Printf.sprintf "error response: %s" e)
  | _ ->
    let* estimate = num "estimate" in
    let* rhat = num "rhat" in
    let* ess = num "ess" in
    let* mcse = num "mcse" in
    let* samples = num "samples" in
    let* chains = num "chains" in
    let* cached = bool_f "cached" in
    (* absent on lines from pre-deadline peers: default false *)
    let partial =
      match Jsonl.member "partial" json with
      | Some (Jsonl.Bool v) -> v
      | _ -> false
    in
    let* digest =
      match Jsonl.member "digest" json with
      | Some (Jsonl.Str d) -> Ok d
      | _ -> Error "missing field \"digest\""
    in
    let version =
      match Jsonl.member "version" json with
      | Some (Jsonl.Num v) when Float.is_integer v -> Some (int_of_float v)
      | _ -> None
    in
    (* lines from pre-planner peers carry no "plan" field: treat them
       as MH answers with no fallback tag *)
    let plan =
      match Jsonl.member "plan" json with
      | Some (Jsonl.Str "exact") ->
        let cone_nodes =
          match Jsonl.member "plan_cone" json with
          | Some (Jsonl.Num v) when Float.is_integer v -> int_of_float v
          | _ -> 0
        in
        let validated =
          match Jsonl.member "plan_validated" json with
          | Some (Jsonl.Bool v) -> v
          | _ -> false
        in
        Engine.Plan_exact { cone_nodes; validated }
      | _ ->
        let fallback =
          match Jsonl.member "plan_fallback" json with
          | Some (Jsonl.Str s) -> Some s
          | _ -> None
        in
        Engine.Plan_mh { fallback }
    in
    Ok
      ( {
          Engine.estimate;
          rhat;
          ess;
          mcse;
          total_samples = int_of_float samples;
          chains_used = int_of_float chains;
          cached;
          partial;
          model_digest = digest;
          plan;
        },
        version )
