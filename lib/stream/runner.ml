module Engine = Iflow_engine.Engine
module Metrics = Iflow_obs.Metrics
module Trace = Iflow_obs.Trace
module Clock = Iflow_obs.Clock

let m_published =
  Metrics.counter ~help:"Model versions published"
    "iflow_stream_versions_published_total"

let m_checkpoints =
  Metrics.counter ~help:"Checkpoints written" "iflow_stream_checkpoints_total"

let m_offset =
  Metrics.gauge ~help:"Log offset (lines consumed) — resume point / ingest lag"
    "iflow_stream_ingest_offset"

let m_batch_seconds =
  Metrics.histogram ~scale:1e-9
    ~help:"Wall time from one publish to the next (evidence absorption \
           included)"
    "iflow_stream_batch_seconds"

let m_publish_seconds =
  Metrics.histogram ~scale:1e-9
    ~help:"Wall time of freeze + publish + engine swap + decay"
    "iflow_stream_publish_seconds"

let m_swap_seconds =
  Metrics.histogram ~scale:1e-9
    ~help:"Wall time of hot-swapping a published version into the engine"
    "iflow_stream_swap_seconds"

type config = { batch : int; checkpoint_every : int option }

let default_config = { batch = 256; checkpoint_every = None }

type report = {
  lines : int;
  stats : Online.stats;
  final : Snapshot.version;
  versions_published : int;
  checkpoints_written : int;
  cache_evictions : int;
  drift_alerts : Drift.alert list;
  wall_ns : int;
  events_per_sec : float;
}

let lines_of_channel ic () =
  match input_line ic with line -> Some line | exception End_of_file -> None

let lines_of_list lines =
  let rest = ref lines in
  fun () ->
    match !rest with
    | [] -> None
    | line :: tl ->
      rest := tl;
      Some line

let run ?engine ?(skip = 0) ?on_alert ?on_publish config online snapshot next =
  if config.batch < 1 then invalid_arg "Runner.run: batch must be >= 1";
  (match config.checkpoint_every with
  | Some k when k < 1 -> invalid_arg "Runner.run: checkpoint_every must be >= 1"
  | _ -> ());
  if skip < 0 then invalid_arg "Runner.run: negative skip";
  for _ = 1 to skip do
    ignore (next ())
  done;
  let t_start = Clock.now_ns () in
  let t_last_publish = ref t_start in
  let lines = ref skip in
  let pending = ref 0 in
  let last_checkpoint = ref skip in
  let evictions = ref 0 in
  let published = ref 0 in
  let checkpoints = ref 0 in
  let seen_alerts = ref 0 in
  let swap () =
    match engine with
    | Some e ->
      let t0 = Clock.now_ns () in
      evictions := !evictions + Snapshot.swap_into snapshot e;
      Metrics.observe m_swap_seconds (Clock.now_ns () - t0)
    | None -> ()
  in
  swap ();
  let drain_alerts () =
    match Online.drift online with
    | None -> ()
    | Some d ->
      let count = Drift.alert_count d in
      if count > !seen_alerts then begin
        List.iteri
          (fun i a ->
            if i >= !seen_alerts then begin
              if Trace.enabled () then
                Trace.instant "stream.drift_alert"
                  ~args:
                    [
                      ("edge", Trace.Int a.Drift.edge);
                      ("reference_rate", Trace.Float a.Drift.reference_rate);
                      ("window_rate", Trace.Float a.Drift.window_rate);
                    ]
                  ();
              match on_alert with Some f -> f a | None -> ()
            end)
          (Drift.alerts d);
        seen_alerts := count
      end
  in
  let checkpoint_due () =
    match config.checkpoint_every with
    | Some k -> !lines - !last_checkpoint >= k
    | None -> false
  in
  let write_checkpoint () =
    Snapshot.checkpoint snapshot;
    incr checkpoints;
    Metrics.inc m_checkpoints;
    last_checkpoint := !lines
  in
  let publish () =
    Trace.with_span "stream.publish" ~args:[ ("offset", Trace.Int !lines) ]
    @@ fun () ->
    let t0 = Clock.now_ns () in
    let v = Snapshot.publish snapshot (Online.model online) ~offset:!lines in
    swap ();
    (* forgetting is per published batch: evidence already absorbed
       loses weight (1 - lambda) before the next batch accumulates *)
    Online.decay online;
    incr published;
    pending := 0;
    Metrics.inc m_published;
    Metrics.set m_offset (float_of_int !lines);
    let t1 = Clock.now_ns () in
    Metrics.observe m_publish_seconds (t1 - t0);
    Metrics.observe m_batch_seconds (t1 - !t_last_publish);
    t_last_publish := t1;
    (match on_publish with Some f -> f v | None -> ());
    if checkpoint_due () then write_checkpoint ()
  in
  let rec loop () =
    match next () with
    | None -> ()
    | Some line ->
      incr lines;
      (match Online.apply_line online line with
      | `Applied -> incr pending
      | `Quarantined _ -> ());
      drain_alerts ();
      if !pending >= config.batch then publish ();
      loop ()
  in
  loop ();
  if !pending > 0 then publish ();
  if config.checkpoint_every <> None && !last_checkpoint <> !lines then
    write_checkpoint ();
  let wall_ns = Clock.now_ns () - t_start in
  let stats = Online.stats online in
  {
    lines = !lines;
    stats;
    final = Snapshot.current snapshot;
    versions_published = !published;
    checkpoints_written = !checkpoints;
    cache_evictions = !evictions;
    drift_alerts =
      (match Online.drift online with Some d -> Drift.alerts d | None -> []);
    wall_ns;
    events_per_sec =
      (if wall_ns <= 0 then 0.0
       else
         float_of_int stats.Online.applied /. Clock.seconds_of_ns wall_ns);
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%d lines: %a@,\
     final version %d (digest %s, offset %d); %d published, %d checkpoints, \
     %d cache evictions, %d drift alerts; %.3f s (%.0f events/s)@]"
    r.lines Online.pp_stats r.stats r.final.Snapshot.id r.final.Snapshot.digest
    r.final.Snapshot.offset r.versions_published r.checkpoints_written
    r.cache_evictions
    (List.length r.drift_alerts)
    (Iflow_obs.Clock.seconds_of_ns r.wall_ns)
    r.events_per_sec
