lib/exp/fig4.ml: Array Beta_icm Float Format Iflow_core Iflow_mcmc Iflow_stats List Scale Twitter_lab
