module Metrics = Iflow_obs.Metrics

let m_retries =
  Metrics.counter ~help:"Operations re-attempted after a transient failure"
    "iflow_fault_retries_total"

let m_giveups =
  Metrics.counter
    ~help:"Retried operations that exhausted their attempts or deadline"
    "iflow_fault_retry_giveups_total"

type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  jitter : float;
  max_delay : float;
  budget : float option;
}

let default =
  {
    max_attempts = 3;
    base_delay = 0.01;
    multiplier = 2.0;
    jitter = 0.1;
    max_delay = 1.0;
    budget = None;
  }

let no_delay = { default with base_delay = 0.0; max_delay = 0.0; jitter = 0.0 }

let validate p =
  let bad fmt = Printf.ksprintf invalid_arg ("Retry: bad policy: " ^^ fmt) in
  if p.max_attempts < 1 then bad "max_attempts must be >= 1 (got %d)" p.max_attempts;
  if not (p.base_delay >= 0.0) then bad "base_delay must be >= 0 (got %g)" p.base_delay;
  if not (p.multiplier >= 1.0) then bad "multiplier must be >= 1 (got %g)" p.multiplier;
  if not (p.jitter >= 0.0 && p.jitter <= 1.0) then bad "jitter outside [0, 1] (got %g)" p.jitter;
  if not (p.max_delay >= 0.0) then bad "max_delay must be >= 0 (got %g)" p.max_delay;
  match p.budget with
  | Some b when not (b >= 0.0) -> bad "budget must be >= 0 (got %g)" b
  | _ -> ()

(* Deterministic jitter stream (splitmix64), private to this module:
   backoff spreading needs decorrelation, not entropy, and must not
   perturb the simulation RNGs. *)
let jitter_state = ref 0x2545F4914F6CDD1D

let jitter_uniform () =
  let z = !jitter_state + 0x2E3779B97F4A7C15 in
  jitter_state := z;
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  let z = (z lxor (z lsr 27)) * 0x14D049BB133111EB in
  float_of_int ((z lxor (z lsr 31)) land max_int) /. float_of_int max_int

let delay_for policy ~attempt =
  (* attempt 1 failed -> first sleep is base_delay *)
  let raw = policy.base_delay *. (policy.multiplier ** float_of_int (attempt - 1)) in
  let capped = Float.min policy.max_delay raw in
  if policy.jitter = 0.0 then capped
  else capped *. (1.0 +. (policy.jitter *. ((2.0 *. jitter_uniform ()) -. 1.0)))

let with_policy ?(retryable = fun _ -> true) ?on_retry
    ?(sleep = fun s -> if s > 0.0 then Unix.sleepf s) policy f =
  validate policy;
  let spent = ref 0.0 in
  let rec go attempt =
    match f () with
    | v -> v
    | exception e when attempt < policy.max_attempts && retryable e ->
      let d = delay_for policy ~attempt in
      let over_budget =
        match policy.budget with
        | Some b -> !spent +. d > b
        | None -> false
      in
      if over_budget then begin
        Metrics.inc m_giveups;
        raise e
      end
      else begin
        Metrics.inc m_retries;
        (match on_retry with
        | Some g -> g ~attempt ~delay:d e
        | None -> ());
        sleep d;
        spent := !spent +. d;
        go (attempt + 1)
      end
    | exception e ->
      if retryable e && policy.max_attempts > 1 then Metrics.inc m_giveups;
      raise e
  in
  go 1
