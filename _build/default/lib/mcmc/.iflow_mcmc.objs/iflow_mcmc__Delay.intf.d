lib/mcmc/delay.mli: Conditions Estimator Iflow_core Iflow_stats
