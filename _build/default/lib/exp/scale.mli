(** Experiment sizing.

    Every experiment accepts a {!t} so the bench binary can run a
    fast-but-representative version by default and the paper-scale
    version under [IFLOW_FULL=1]. The {i shapes} the paper reports
    (who wins, calibration coverage, crossovers) are stable across
    scales; only the error bars shrink. *)

type t = Quick | Full

val from_env : unit -> t
(** [Full] when the environment variable [IFLOW_FULL] is set to a
    non-empty value other than ["0"], else [Quick]. *)

val pick : t -> quick:'a -> full:'a -> 'a

val mcmc : t -> Iflow_mcmc.Estimator.config
(** A sampling budget appropriate for the scale. *)

val pp : Format.formatter -> t -> unit
