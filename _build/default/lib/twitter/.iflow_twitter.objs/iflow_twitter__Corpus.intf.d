lib/twitter/corpus.mli: Iflow_core Iflow_graph Iflow_stats Tweet
