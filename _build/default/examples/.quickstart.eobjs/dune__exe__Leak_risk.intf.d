examples/leak_risk.mli:
