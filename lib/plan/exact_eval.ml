module Digraph = Iflow_graph.Digraph

(* Certify-then-evaluate on an extracted cone.

   Eq. 2 multiplies one factor per in-edge of the target as if the
   flows to different parents were independent events; DESIGN.md §1
   shows that is exact iff those parent flows are edge-disjoint.  The
   certificate checked here: for every cone node k with two or more
   live (positive-probability) in-cone in-edges (l1,k), (l2,k), the
   cone ancestor sets anc(l1) and anc(l2) — each including its own
   endpoint — intersect in at most {src}.  Vertex-disjointness away
   from src forces edge-disjointness (a shared edge u->w would put
   w <> src in both sets), so the parent flows are functions of
   disjoint, independent edge coins and the product form is exact.
   Excluding nodes only shrinks in-neighbourhoods and path sets, so the
   certificate survives every recursive call. Parallel edges from the
   same parent are the degenerate shared-ancestry case (sound only when
   that parent is src itself, where both "flows" are constant 1).

   Two tiers:
   - tree: every non-src cone node has exactly one live in-edge, so the
     cone is the unique src -> dst path and the probability is the
     product of its edge probabilities. O(path), no ancestor machinery.
   - general: lazily computed per-node ancestor bitsets certify the
     joins, then the Eq. 2 recursion runs with hash-consed exclusion
     sets pruned to the target's ancestors. The pruning is what makes
     this scale: in a certified DAG cone the pruned exclusion set is
     always empty (a recursion-path node in anc(l) would close a
     cycle), so every node memoises on (node, ∅) and evaluation is
     linear in the cone; certified cycles keep small non-empty sets.
   Every edge visit and bitset word spends one unit of the caller's
   work budget; blowing the budget aborts cleanly to an MH fallback. *)

type outcome =
  | Value of { p : float; work : int; path : int list option }
      (* [path]: cone-local node ids src..dst when the cone is a tree *)
  | Unsound of { join : int } (* cone-local id of the violating join *)
  | Budget of { work : int }

exception Out_of_budget

let eval ?(budget = max_int) (c : Cone.t) =
  let g = c.Cone.sub in
  let n = Digraph.n_nodes g in
  let src = c.Cone.src and dst = c.Cone.dst in
  let work = ref 0 in
  let spend k =
    work := !work + k;
    if !work > budget then raise Out_of_budget
  in
  (* live in-degree, and the one live in-edge where it is unique *)
  let indeg = Array.make n 0 in
  let only_in = Array.make n (-1) in
  for e = 0 to Digraph.n_edges g - 1 do
    if c.Cone.probs.(e) > 0.0 then begin
      let k = Digraph.edge_dst g e in
      indeg.(k) <- indeg.(k) + 1;
      only_in.(k) <- e
    end
  done;
  let tree = ref true in
  for v = 0 to n - 1 do
    if v <> src && indeg.(v) <> 1 then tree := false
  done;
  try
    if !tree then begin
      (* the cone is the unique src -> dst path: walking up the unique
         live in-edges must reach src (a cycle of unique in-edges would
         be unreachable from src, contradicting cone membership) *)
      spend n;
      let p = ref 1.0 in
      let path = ref [ dst ] in
      let v = ref dst in
      let steps = ref 0 in
      while !v <> src do
        incr steps;
        assert (!steps <= n);
        let e = only_in.(!v) in
        p := !p *. c.Cone.probs.(e);
        v := Digraph.edge_src g e;
        path := !v :: !path
      done;
      Value { p = !p; work = !work; path = Some !path }
    end
    else begin
      (* --- general tier --- *)
      let nw = (n + 62) / 63 in
      let bit b v = b.(v / 63) <- b.(v / 63) lor (1 lsl (v mod 63)) in
      let mem b v = b.(v / 63) land (1 lsl (v mod 63)) <> 0 in
      (* lazy per-node ancestor bitsets (self included), by reverse BFS
         over live cone edges *)
      let anc : int array option array = Array.make n None in
      let queue = Array.make n 0 in
      let ancestors v =
        match anc.(v) with
        | Some b -> b
        | None ->
          let b = Array.make nw 0 in
          let head = ref 0 and tail = ref 0 in
          let push u =
            queue.(!tail) <- u;
            incr tail
          in
          bit b v;
          push v;
          while !head < !tail do
            let u = queue.(!head) in
            incr head;
            Digraph.iter_in g u (fun e ->
                spend 1;
                if c.Cone.probs.(e) > 0.0 then begin
                  let w = Digraph.edge_src g e in
                  if not (mem b w) then begin
                    bit b w;
                    push w
                  end
                end)
          done;
          anc.(v) <- Some b;
          b
      in
      let src_mask = Array.make nw 0 in
      bit src_mask src;
      let disjoint_but_src b1 b2 =
        let ok = ref true in
        for w = 0 to nw - 1 do
          if b1.(w) land b2.(w) land lnot src_mask.(w) <> 0 then ok := false
        done;
        spend nw;
        !ok
      in
      (* certify every join *)
      (* src is skipped: Pr[s ~> s] = 1 whatever feeds back into it, so
         in-edges of src never enter the recursion *)
      let unsound = ref (-1) in
      for k = 0 to n - 1 do
        if !unsound < 0 && k <> src && indeg.(k) >= 2 then begin
          let parents = ref [] in
          Digraph.iter_in g k (fun e ->
              if c.Cone.probs.(e) > 0.0 then
                parents := Digraph.edge_src g e :: !parents);
          let rec pairs = function
            | [] -> ()
            | p :: rest ->
              List.iter
                (fun q ->
                  if !unsound < 0 then
                    if p = q then begin
                      if p <> src then unsound := k
                    end
                    else if not (disjoint_but_src (ancestors p) (ancestors q))
                    then unsound := k)
                rest;
              pairs rest
          in
          pairs !parents
        end
      done;
      if !unsound >= 0 then Unsound { join = !unsound }
      else begin
        (* Eq. 2 with hash-consed exclusion sets. Sets are sorted node
           lists interned to ids; an exclusion passed to [pr target] is
           always pre-pruned to anc(target) (pruning never drops a
           parent of target, and a flow src ~> target ex X only depends
           on X ∩ anc(target)), so structurally different recursion
           paths that agree on the relevant exclusions share one memo
           cell. *)
        let set_ids : (int list, int) Hashtbl.t = Hashtbl.create 64 in
        Hashtbl.add set_ids [] 0;
        let next_id = ref 1 in
        let intern lst =
          match Hashtbl.find_opt set_ids lst with
          | Some id -> id
          | None ->
            let id = !next_id in
            incr next_id;
            Hashtbl.add set_ids lst id;
            id
        in
        let memo : (int * int, float) Hashtbl.t = Hashtbl.create 256 in
        let rec insert v = function
          | [] -> [ v ]
          | x :: _ as l when v < x -> v :: l
          | x :: rest when v = x -> x :: rest
          | x :: rest -> x :: insert v rest
        in
        let prune b lst =
          List.filter
            (fun v ->
              spend 1;
              mem b v)
            lst
        in
        let rec pr target excl =
          if target = src then 1.0
          else begin
            let id = intern excl in
            match Hashtbl.find_opt memo (target, id) with
            | Some p -> p
            | None ->
              let excl' = insert target excl in
              let product = ref 1.0 in
              Digraph.iter_in g target (fun e ->
                  spend 1;
                  let p_e = c.Cone.probs.(e) in
                  if p_e > 0.0 then begin
                    let l = Digraph.edge_src g e in
                    if not (List.mem l excl) then begin
                      let sub = pr l (prune (ancestors l) excl') in
                      product := !product *. (1.0 -. (sub *. p_e))
                    end
                  end);
              let p = 1.0 -. !product in
              Hashtbl.add memo (target, id) p;
              p
          end
        in
        let p = pr dst [] in
        Value { p; work = !work; path = None }
      end
    end
  with Out_of_budget -> Budget { work = !work }
