(** Prometheus text exposition (format 0.0.4) over a {!Metrics}
    snapshot, plus a standalone validator for CI. *)

val to_string : Metrics.registry -> string
(** Render every registered metric: [# HELP]/[# TYPE] header per metric
    name, counter/gauge sample lines, histograms as cumulative
    [_bucket{le="..."}] series plus [_sum] and [_count], with the
    histogram's [scale] applied to bucket edges and sums. Special
    float values render as [NaN], [+Inf], [-Inf]. *)

val write_file : Metrics.registry -> string -> unit
(** [write_file registry path] atomically-ish dumps {!to_string} to
    [path] (truncates). *)

val check : string -> (unit, string) result
(** Validate a text exposition: every non-comment line must parse as
    [name{labels} value], label syntax must be well-formed, [# TYPE]
    must name a known type, a metric name must not carry two [# TYPE]
    declarations, and no two samples may share the same name + label
    set. Returns [Error msg] naming the first offending line. *)
