lib/exp/fig10.ml: Fig8_9 Format Iflow_bucket Iflow_twitter Scale
