(** The credit heuristic of Goyal, Bonchi & Lakshmanan (WSDM 2010), as
    described in paper Section V-B: when sink [k] activates with
    candidate parents [J], every [j] in [J] receives credit [1 / |J|];
    an edge's probability is its accumulated credit divided by the
    number of objects in which its parent was a candidate. *)

val train : Iflow_core.Summary.t -> Trainer.estimate
(** Point estimates; std is all zeros. Parents that never appear in a
    leaking characteristic get probability 0. *)
