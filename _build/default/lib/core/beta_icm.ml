module Digraph = Iflow_graph.Digraph
module Beta = Iflow_stats.Dist.Beta
module Dist = Iflow_stats.Dist
module Rng = Iflow_stats.Rng

type t = { graph : Digraph.t; betas : Beta.t array }

let create graph betas =
  if Array.length betas <> Digraph.n_edges graph then
    invalid_arg "Beta_icm.create: size mismatch";
  { graph; betas = Array.copy betas }

let uninformed graph =
  { graph; betas = Array.make (Digraph.n_edges graph) Beta.uniform }

let graph t = t.graph
let edge_beta t e = t.betas.(e)
let n_nodes t = Digraph.n_nodes t.graph
let n_edges t = Digraph.n_edges t.graph

let train_attributed g objects =
  let m = Digraph.n_edges g in
  let alpha = Array.make m 1.0 and beta = Array.make m 1.0 in
  List.iter
    (fun (o : Evidence.attributed_object) ->
      if not (Evidence.attributed_object_is_consistent g o) then
        invalid_arg "Beta_icm.train_attributed: inconsistent object";
      for e = 0 to m - 1 do
        if o.active_edges.(e) then alpha.(e) <- alpha.(e) +. 1.0
        else if o.active_nodes.(Digraph.edge_src g e) then
          beta.(e) <- beta.(e) +. 1.0
      done)
    objects;
  { graph = g; betas = Array.init m (fun e -> Beta.v alpha.(e) beta.(e)) }

let observe t ~edge ~fired =
  let b = t.betas.(edge) in
  let b' =
    if fired then Beta.v (b.Beta.alpha +. 1.0) b.Beta.beta
    else Beta.v b.Beta.alpha (b.Beta.beta +. 1.0)
  in
  let betas = Array.copy t.betas in
  betas.(edge) <- b';
  { t with betas }

let grow t ~new_nodes ~new_edges =
  if new_nodes < 0 then invalid_arg "Beta_icm.grow: negative node count";
  let nodes = Digraph.n_nodes t.graph + new_nodes in
  let pairs =
    Digraph.edges t.graph @ List.map (fun (s, d, _) -> (s, d)) new_edges
  in
  let betas =
    Array.append t.betas (Array.of_list (List.map (fun (_, _, b) -> b) new_edges))
  in
  { graph = Digraph.of_edges ~nodes pairs; betas }

let remove_edges t pairs =
  let doomed = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace doomed p ()) pairs;
  let kept =
    List.filteri
      (fun _ pair -> not (Hashtbl.mem doomed pair))
      (Digraph.edges t.graph)
  in
  let kept_betas =
    List.filteri
      (fun e _ ->
        let pair = (Digraph.edge_src t.graph e, Digraph.edge_dst t.graph e) in
        not (Hashtbl.mem doomed pair))
      (Array.to_list t.betas)
  in
  {
    graph = Digraph.of_edges ~nodes:(Digraph.n_nodes t.graph) kept;
    betas = Array.of_list kept_betas;
  }

let expected_icm t = Icm.create t.graph (Array.map Beta.mean t.betas)
let mode_icm t = Icm.create t.graph (Array.map Beta.mode t.betas)

let sample_icm rng t =
  Icm.create t.graph (Array.map (fun b -> Beta.sample rng b) t.betas)

let mean_std_icm rng ~mean ~std g =
  let m = Digraph.n_edges g in
  if Array.length mean <> m || Array.length std <> m then
    invalid_arg "Beta_icm.mean_std_icm: size mismatch";
  let probs =
    Array.init m (fun e ->
        let p = Dist.gaussian rng ~mean:mean.(e) ~std:std.(e) in
        Float.max 0.0 (Float.min 1.0 p))
  in
  Icm.create g probs

let pp ppf t =
  Format.fprintf ppf "beta_icm(%d nodes, %d edges)" (n_nodes t) (n_edges t)
