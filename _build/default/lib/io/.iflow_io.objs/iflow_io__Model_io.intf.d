lib/io/model_io.mli: Iflow_core Iflow_twitter
