lib/exp/twitter_lab.ml: Array Beta_icm Corpus Evidence Generator Iflow_core Iflow_graph Iflow_stats Iflow_twitter List Preprocess Scale Tweet
