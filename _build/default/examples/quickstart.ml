(* Quickstart: build an ICM, evaluate flow exactly and by sampling,
   train a betaICM from observed cascades, and ask a conditional query.

   Run with: dune exec examples/quickstart.exe *)
module Digraph = Iflow_graph.Digraph
module Rng = Iflow_stats.Rng
module Icm = Iflow_core.Icm
module Exact = Iflow_core.Exact
module Cascade = Iflow_core.Cascade
module Beta_icm = Iflow_core.Beta_icm
module Estimator = Iflow_mcmc.Estimator
module Conditions = Iflow_mcmc.Conditions

let () =
  let rng = Rng.create 42 in

  (* 1. The paper's running example: three nodes, three edges. *)
  let g = Digraph.of_edges ~nodes:3 [ (0, 1); (0, 2); (1, 2) ] in
  let icm = Icm.create g [| 0.5; 0.25; 0.75 |] in
  Printf.printf "A 3-node ICM: 0 -> 1 (p=0.5), 0 -> 2 (p=0.25), 1 -> 2 (p=0.75)\n";

  (* 2. Exact flow probability (Equation 1 of the paper):
        Pr(0 ~> 2) = 1 - (1 - 0.5 * 0.75)(1 - 0.25) = 0.53125 *)
  let exact = Exact.flow_probability icm ~src:0 ~dst:2 in
  Printf.printf "exact     Pr(0 ~> 2) = %.5f\n" exact;

  (* 3. The same probability by Metropolis-Hastings sampling — the
        method that still works when the graph has thousands of
        edges and exact evaluation is hopeless. *)
  let config = { Estimator.burn_in = 1000; thin = 10; samples = 5000 } in
  let sampled = Estimator.flow_probability rng icm config ~src:0 ~dst:2 in
  Printf.printf "sampled   Pr(0 ~> 2) = %.5f\n" sampled;

  (* 4. Conditional flow: if we know the message reached node 1,
        how likely is it to reach node 2? *)
  let conditions = Conditions.v [ (0, 1, true) ] in
  let conditional =
    Estimator.flow_probability ~conditions rng icm config ~src:0 ~dst:2
  in
  Printf.printf "sampled   Pr(0 ~> 2 | 0 ~> 1) = %.5f (exact %.5f)\n"
    conditional
    (Exact.brute_force_conditional icm ~conditions:[ (0, 1, true) ] ~src:0
       ~dst:2);

  (* 5. Learning: watch 500 cascades from node 0, then train a betaICM
        with the paper's attributed counting rule. *)
  let observations =
    List.init 500 (fun _ -> Cascade.run rng icm ~sources:[ 0 ]) in
  let model = Beta_icm.train_attributed g observations in
  Printf.printf "\nTrained betaICM from 500 observed cascades:\n";
  for e = 0 to 2 do
    let b = Beta_icm.edge_beta model e in
    let { Digraph.src; dst } = Digraph.edge g e in
    Printf.printf "  edge %d -> %d: %s (mean %.3f, truth %.2f)\n" src dst
      (Format.asprintf "%a" Iflow_stats.Dist.Beta.pp b)
      (Iflow_stats.Dist.Beta.mean b) (Icm.prob icm e)
  done;

  (* 6. Prediction from the trained model. *)
  let trained = Beta_icm.expected_icm model in
  Printf.printf "\ntrained   Pr(0 ~> 2) = %.5f (truth %.5f)\n"
    (Estimator.flow_probability rng trained config ~src:0 ~dst:2)
    exact
