(** Flow-probability estimation by Metropolis-Hastings sampling
    (paper Equations 5–8).

    Every estimator runs one chain: burn in, then take [samples] states
    spaced [thin] steps apart and average an indicator (or collect a
    statistic) over them. *)

type config = { burn_in : int; thin : int; samples : int }

val default_config : config
(** burn_in 1000, thin 20, samples 1000 — comfortable for the paper's
    50-node / 200-edge synthetic models. *)

val quick_config : config
(** A cheaper setting for large experiment sweeps. *)

val fold_samples :
  ?conditions:Conditions.t ->
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> config ->
  init:'a -> f:('a -> Iflow_core.Pseudo_state.t -> 'a) -> 'a
(** The shared sampling loop; [f] must not retain or mutate the state it
    is handed. *)

val fold_samples_ws :
  ?conditions:Conditions.t ->
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> config ->
  init:'a ->
  f:('a -> Iflow_graph.Reach.workspace -> Iflow_core.Pseudo_state.t -> 'a) ->
  'a
(** Like {!fold_samples}, but also hands [f] the chain's own BFS
    workspace so per-sample reachability sweeps
    ({!Iflow_core.Pseudo_state.flow_ws}, [reachable_ws]) allocate
    nothing. The workspace marks are only valid inside that call of
    [f]; every built-in estimator goes through this. *)

exception Cancelled
(** Raised by {!stream} / {!stream_next} when the stream's
    {!Cancel.t} token has tripped — between whole MH steps only, so a
    chain that is {e not} cancelled is bit-for-bit unaffected by the
    checks. *)

type stream
(** An open-ended per-chain sample stream: one burnt-in chain that hands
    out retained samples on demand, [thin] steps apart. This is the
    engine-facing view of a chain — callers that need incremental
    draws (adaptive stopping, cross-chain diagnostics) pull exactly as
    many samples as they decide to, instead of committing to a fixed
    [samples] budget up front. A stream owns its [Rng.t] and chain
    state; it must only be used from one domain at a time. *)

val stream :
  ?cancel:Cancel.t ->
  ?conditions:Conditions.t ->
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> burn_in:int -> thin:int -> stream
(** Create the chain, run the burn-in, and return the stream. Raises
    like {!Chain.create} (e.g. [Failure] when the conditions cannot be
    satisfied) and [Invalid_argument] on [burn_in < 0] or [thin < 1].

    [?cancel] (default {!Cancel.none}) makes the burn-in cooperative:
    the token is polled every 128 steps (chunked {!Chain.advance} —
    exactly the same step/RNG sequence as one big advance) and at
    every subsequent {!stream_next}, raising {!Cancelled} once it
    trips. An unexpired token changes nothing. *)

val stream_next : stream -> f:(Iflow_core.Pseudo_state.t -> 'a) -> 'a
(** Advance [thin] steps and apply [f] to the new retained state. [f]
    must not retain or mutate the state. Raises {!Cancelled} when the
    stream's token has tripped (checked before advancing, so a
    cancelled stream never draws again). *)

val stream_chain : stream -> Chain.t
(** The underlying chain (acceptance-rate inspection etc.). *)

val stream_workspace : stream -> Iflow_graph.Reach.workspace
(** The stream's chain-owned BFS workspace — one per chain, so a query
    engine running K chains on K domains threads K disjoint
    workspaces. Reuse it to evaluate indicators over retained samples
    without allocating. *)

val flow_probability :
  ?conditions:Conditions.t ->
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> config ->
  src:int -> dst:int -> float
(** Estimate of [Pr (src ~> dst | M, C)]. *)

val source_to_all :
  ?conditions:Conditions.t ->
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> config -> src:int -> float array
(** [Pr (src ~> v)] for every node [v] from a single chain (one
    reachability sweep per retained sample covers all sinks). The entry
    for [src] itself is 1. *)

val conditional_flow_by_ratio :
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> config ->
  conditions:Conditions.t -> src:int -> dst:int -> float
(** The paper's footnote-2 alternative to the constrained chain: sample
    the {i unconstrained} marginal chain and estimate
    [Pr (src ~> dst | C) = #(flow and C) / #C] — "trading off the number
    of samples with time per sample". Cheaper per step (no indicator
    check inside the transition), but wasteful when [Pr C] is small.
    Raises [Failure] when no retained sample satisfied the
    conditions. *)

val community_flow :
  ?conditions:Conditions.t ->
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> config ->
  src:int -> sinks:int list -> float
(** Probability that the object reaches every sink (source-to-community
    flow). *)

val joint_flow :
  ?conditions:Conditions.t ->
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> config ->
  flows:(int * int) list -> float
(** Probability that all the listed end-to-end flows co-occur. *)

val impact_samples :
  ?conditions:Conditions.t ->
  Iflow_stats.Rng.t -> Iflow_core.Icm.t -> config -> src:int -> int array
(** Per retained sample, the number of non-source nodes reached from
    [src] — the dispersion / "number of retweeting users" statistic of
    Fig 4. *)
