(** The parallel flow-query engine.

    Turns the one-shot estimator of {!Iflow_mcmc.Estimator} into a
    reusable service: each query runs K independent Metropolis-Hastings
    chains spread across a {!Pool} of OCaml 5 domains, draws samples in
    adaptive rounds until the cross-chain {!Diagnostics} pass
    (split-R̂ ≤ target and MCSE ≤ target) or a sample budget is
    exhausted, and memoises results in an {!Lru} cache keyed by
    (model digest, query, conditions, config, seed).

    {b Reproducibility.} Every query derives its own seed by
    fingerprinting (engine seed, model digest, query key); chain [i]
    then takes the [i]-th {!Iflow_stats.Rng.split} of that stream, and
    chains are merged in index order. Results are therefore bit-for-bit
    identical across runs, across query arrival orders, and across pool
    sizes — the domain count changes wall-clock time only.

    {b Thread safety.} An engine value may be driven by concurrent
    callers (threads or domains): the cache and the current
    (model, digest) pair sit behind one internal mutex, held only for
    cache probes and swaps, never while sampling. Each query pins the
    (model, digest) pair it sees at entry, so a {!swap} landing
    mid-query never mixes model versions inside one answer — the
    serving layer leans on exactly this to keep answering during
    hot-swaps. Determinism is unaffected: per-query seeds depend only
    on (engine seed, model digest, query), not on interleaving. *)

type config = {
  chains : int;          (** independent MH chains per query *)
  domains : int option;  (** pool size; [None] = recommended count *)
  burn_in : int;         (** per-chain burn-in steps *)
  thin : int;            (** steps between retained samples *)
  round_samples : int;   (** per-chain samples per adaptive round *)
  max_samples : int;     (** cap on total retained samples across chains *)
  rhat_target : float;   (** stop when split-R̂ falls below this *)
  mcse_target : float;   (** ... and the Monte-Carlo SE below this *)
  cache_capacity : int;  (** LRU entries; 0 disables caching *)
  planner : bool;
      (** route queries through the exact-oracle planner
          ({!Iflow_plan.Planner}) first; [false] forces the MH path *)
  plan_budget : int;     (** planner work budget (certification +
                             evaluation units) per query *)
  plan_validate : bool;
      (** exact-then-validate mode: exact answers are cross-checked
          against a full MH run (within [5 × MCSE]); disagreements are
          logged and counted, the exact answer is still returned *)
}

val default_config : config
(** chains 4, recommended domains, burn-in 1000, thin 20 (matching
    {!Iflow_mcmc.Estimator.default_config}), rounds of 250, cap 20000,
    R̂ ≤ 1.05, MCSE ≤ 0.01, cache 256, planner on with
    {!Iflow_plan.Planner.default_budget}, validation off. *)

type plan =
  | Plan_exact of { cone_nodes : int; validated : bool }
      (** answered in closed form by the planner; [cone_nodes] is the
          total size of the evaluated reachability cones *)
  | Plan_mh of { fallback : string option }
      (** answered by Metropolis-Hastings sampling; [fallback] is the
          planner's {!Iflow_plan.Planner.reason_label} when the planner
          was consulted and refused, [None] for pre-planner answers
          (e.g. parsed off the wire from an older peer) *)

type result = {
  estimate : float;      (** pooled flow-probability estimate *)
  rhat : float;          (** split-R̂ at stopping time *)
  ess : float;           (** total effective sample size *)
  mcse : float;          (** Monte-Carlo standard error *)
  total_samples : int;   (** retained samples actually drawn *)
  chains_used : int;     (** chains surviving to the estimate; a value
                             below [config.chains] marks a degraded
                             answer (some chains were lost to faults) *)
  cached : bool;         (** served from the cache without sampling *)
  partial : bool;
      (** an anytime answer: a cancel token stopped the adaptive loop
          before convergence, so the estimate pools only the rounds
          that completed and [rhat]/[mcse] are its real (possibly
          unconverged) diagnostics. Never cached. *)
  model_digest : string;
      (** digest of the model version this answer was computed against
          — the serving layer maps it back to a published version id *)
  plan : plan;
      (** how the answer was produced. Exact answers carry
          [rhat = 1.0], [ess = 0.0], [mcse = 0.0],
          [total_samples = 0], [chains_used = 0] — all finite, so the
          wire codec round-trips them bit-exactly. *)
}

type phases = {
  mutable plan_ns : int;   (** time inside {!Iflow_plan.Planner.plan} *)
  mutable sample_ns : int; (** time inside the MH sampling loop *)
  mutable rounds : int;    (** adaptive rounds the sampler ran *)
}
(** Per-query phase decomposition, reported through a caller-provided
    side channel (see {!phases} and the [?phases] argument of {!query})
    rather than in {!result} — results are cached and must stay
    bit-identical whether or not anyone measures them. Fields
    accumulate, so validation reruns add into the same cells; a cache
    hit leaves all three at their initial value. *)

val phases : unit -> phases
(** A fresh all-zero record for one {!query} call. *)

exception
  Chains_failed of {
    query : string;   (** {!Query.key} of the failing query *)
    failed : int;
    chains : int;
    reason : string;  (** printed form of the first chain's exception *)
  }
(** Raised by {!query} when chain failures leave fewer than half the
    configured chains alive — too few for the cross-chain diagnostics
    to vouch for the estimate. Never a crash: the engine itself stays
    usable. *)

exception
  Deadline_exceeded of {
    query : string;   (** {!Query.key} of the cancelled query *)
    reason : string;  (** ["deadline expired"], or the explicit
                          {!Iflow_mcmc.Cancel.fire} reason *)
    rounds : int;     (** complete rounds at the stop (always 0 when
                          [?on_deadline:`Partial] was requested — with
                          a round in hand a partial answer is returned
                          instead) *)
  }
(** Raised by {!query} when its cancel token trips and no answer can
    be returned under the caller's [?on_deadline] policy. The engine
    stays usable; nothing is cached. *)

type t

val create : ?config:config -> seed:int -> Iflow_core.Icm.t -> t
(** Raises [Invalid_argument] on a nonsensical config (no chains,
    [thin < 1], [rhat_target < 1], ...). *)

val icm : t -> Iflow_core.Icm.t
val config : t -> config
val digest : t -> string
(** The model fingerprint used in cache keys and per-query seeds. *)

val pool_size : t -> int

val swap : t -> Iflow_core.Icm.t -> int
(** Hot-swap the engine onto a new model version: subsequent queries
    run (and cache) against the new model and its digest, while a query
    already running when the swap lands finishes on the version it
    captured at entry. Cache entries of the retired digest are evicted
    via {!invalidate}; returns that eviction count (0 when the digests
    coincide). The engine seed is kept, so per-query seeds still depend
    only on (seed, model, query) and swapping back reproduces earlier
    answers bit-for-bit. *)

val invalidate : t -> digest:string -> int
(** Evict every cached result computed against the given model digest,
    returning how many entries were dropped. The drops are counted in
    {!cache_stats} evictions. *)

val query :
  ?rid:string -> ?phases:phases ->
  ?cancel:Iflow_mcmc.Cancel.t -> ?on_deadline:[ `Fail | `Partial ] ->
  t -> Query.t -> result
(** Answer one query, consulting the cache first. Raises
    [Invalid_argument] when the query mentions a node outside the
    model, [Failure] when its conditions cannot be satisfied.

    [?rid] names the request for observability only: it is added to the
    [engine.query] trace span and, when a trace sink is installed,
    hashed into a flow id so the first chain task on a pool domain
    emits the flow-step event linking the caller's spans to the
    sampling work. [?phases] receives the plan/sample time split (see
    {!phases}). Neither argument can reach the RNG, the cache key, or
    the result — answers are bit-for-bit identical with or without
    them.

    {b Deadlines.} [?cancel] (default {!Iflow_mcmc.Cancel.none})
    threads a cooperative cancellation token into the sampler: every
    chain polls it per retained draw and inside the burn-in (128-step
    chunks), and the adaptive loop polls it at round boundaries. A
    token already tripped at entry stops the query before any burn-in
    (cache hits and exact-planned answers are still returned — they
    cost nothing). When the token trips mid-query, [?on_deadline]
    decides the outcome: [`Fail] (default) raises
    {!Deadline_exceeded}; [`Partial] returns the anytime answer over
    the rounds that completed — flagged [partial], carrying its real
    R̂/MCSE, and never cached — falling back to {!Deadline_exceeded}
    when not even one round finished. A round interrupted mid-draw is
    discarded whole, so partial answers stand on the same whole-round
    footing as converged ones. An armed token that never trips changes
    nothing: answers are bit-for-bit identical to an uncancelled run
    (the checks read the clock, never the RNG).

    {b Planning.} With [config.planner] on (the default) the query is
    first offered to {!Iflow_plan.Planner}: queries whose reachability
    cones certify as edge-disjoint (trees, in-stars, the paper's
    triangle and cycle motifs) are answered exactly, in closed form,
    with no sampling — [plan] records [Plan_exact] and the answer is
    cached under the same key a sampled one would use. Everything else
    falls back to MH with the refusal reason in [plan]. The planner is
    deterministic and RNG-free, so MH-path answers are bit-for-bit
    identical to a planner-less engine.

    {b Fault tolerance.} A chain that raises mid-query (including the
    [engine.chain] failpoint) is dropped — its partial round is
    discarded, the survivors' draws are untouched because every chain's
    RNG is split up front — and the query completes from the surviving
    chains as long as at least half remain ([chains_used] records how
    many; counted in [iflow_engine_failed_chains_total] /
    [iflow_engine_degraded_queries_total]). Below half, raises
    {!Chains_failed}. Degraded results are never cached, so the next
    ask re-samples at full strength. *)

val query_all : ?rids:string array -> t -> Query.t list -> result list
(** Batch entry point: deduplicates by cache key so repeated queries
    are sampled once, then answers in input order ([cached] marks the
    duplicates and cache hits). [?rids.(i)] is the request id for the
    [i]-th query (same observability-only contract as {!query}'s
    [?rid]); a short or missing array leaves the rest unnamed. *)

val cache_stats : t -> Lru.stats

val icm_digest : Iflow_core.Icm.t -> string
(** Fingerprint of a model's topology and edge probabilities. *)

val pp_result : Format.formatter -> result -> unit
