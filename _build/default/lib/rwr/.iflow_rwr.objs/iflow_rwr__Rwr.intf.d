lib/rwr/rwr.mli: Iflow_core
