(** Expectation-maximisation estimation of ICM diffusion probabilities,
    after Saito, Nakano & Kimura (KES 2008), in two flavours:

    - {!train_discrete}: the original method, which assumes a parent
      active at step [t] can only cause activation at step [t + 1]. Its
      sufficient statistic groups, per time step, the set of parents
      that activated at the previous step.
    - {!train}: the paper's modified EM (Appendix), which only assumes
      the responsible parent was active {i earlier}, and runs on the
      same characteristic summaries as the joint Bayes method —
      per-characteristic E step [P_J = 1 - prod (1 - k_v)] and M step
      [k_v <- (sum_{J ∋ v} L_J k_v / P_J) / (sum_{J ∋ v} n_J)].

    EM converges to a local maximum of the likelihood; {!restarts}
    exposes the multimodality the paper demonstrates in Fig 11. *)

type options = {
  max_iterations : int;
  tolerance : float; (** stop when no estimate moves more than this *)
  init : [ `Half | `Random of Iflow_stats.Rng.t ];
}

val default_options : options

val em_on_summary : options -> Iflow_core.Summary.t -> Trainer.estimate
(** Run the (modified, summarised) EM directly on a summary. *)

val train : ?options:options -> Iflow_core.Summary.t -> Trainer.estimate
(** The paper's modified EM with defaults. *)

val discrete_summary :
  Iflow_graph.Digraph.t -> Iflow_core.Evidence.unattributed -> sink:int ->
  Iflow_core.Summary.t
(** The discrete-time sufficient statistic: one observation per (object,
    step) with in-neighbours that activated at the immediately preceding
    step, leaking iff the sink activated at that step. *)

val train_discrete :
  ?options:options ->
  Iflow_graph.Digraph.t -> Iflow_core.Evidence.unattributed -> sink:int ->
  Trainer.estimate
(** Original Saito: EM on the discrete-time statistic. *)

val restarts :
  ?options:options ->
  Iflow_stats.Rng.t -> n:int -> Iflow_core.Summary.t -> Trainer.estimate list
(** [n] independent EM runs from uniform-random initialisations — the
    Fig 11 local-maxima scatter. The paper fixes EM at 200 iterations
    with no early stopping for that figure; pass
    [{ default_options with tolerance = 0.0 }] to match. *)
