type t = Random.State.t

let create seed = Random.State.make [| seed; 0x9e3779b9; seed lxor 0x5bd1e995 |]

let split t =
  let a = Random.State.bits t and b = Random.State.bits t in
  Random.State.make [| a; b; a lxor (b lsl 7) |]

let float t bound = Random.State.float t bound
let uniform t = Random.State.float t 1.0
let uniform_in t lo hi = lo +. Random.State.float t (hi -. lo)
let int t bound = Random.State.int t bound
let bool t = Random.State.bool t
let bernoulli t p = Random.State.float t 1.0 < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(Random.State.int t (Array.length a))

let state t = t
